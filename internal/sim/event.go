package sim

import (
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
)

// EventSim is an event-driven incremental scalar simulator. After a full
// baseline evaluation, Perturb re-evaluates only the fan-out cone of a
// changed net, which is much cheaper than full re-simulation when analyzing
// many single-net perturbations of the same pattern (brute-force criticality
// checks, candidate vetting).
type EventSim struct {
	c     *netlist.Circuit
	vals  []logic.Value
	dirty []bool
	queue [][]netlist.NetID // per-level worklists

	// Perturbation scratch, reused across Perturb/Restore cycles so a
	// stem-analysis sweep (thousands of flips per pattern) allocates
	// nothing after the first few calls.
	undoIDs  []netlist.NetID
	undoVals []logic.Value
	changed  []netlist.NetID
}

// NewEventSim creates an event-driven simulator for the finalized circuit.
func NewEventSim(c *netlist.Circuit) *EventSim {
	if !c.Finalized() {
		panic("sim: circuit not finalized")
	}
	return &EventSim{
		c:     c,
		vals:  make([]logic.Value, c.NumGates()),
		dirty: make([]bool, c.NumGates()),
		queue: make([][]netlist.NetID, c.MaxLevel()+1),
	}
}

// Baseline fully evaluates pattern p (with optional forced nets) and stores
// the result as the incremental starting point.
func (e *EventSim) Baseline(p Pattern, force map[netlist.NetID]logic.Value) error {
	vals, err := EvalScalar(e.c, p, force)
	if err != nil {
		return err
	}
	copy(e.vals, vals)
	return nil
}

// Value returns the current value of net id.
func (e *EventSim) Value(id netlist.NetID) logic.Value { return e.vals[id] }

// Values returns the current value slice (owned by the simulator).
func (e *EventSim) Values() []logic.Value { return e.vals }

// Perturb forces net id to v and incrementally re-evaluates its fan-out
// cone, recording an undo log. It returns the set of nets whose value
// changed (including id itself if it changed); the slice is owned by the
// simulator and valid until the next Perturb. Call Restore to undo the
// perturbation (in O(changed) time) before the next Perturb or Baseline.
func (e *EventSim) Perturb(id netlist.NetID, v logic.Value) (changed []netlist.NetID) {
	e.undoIDs = e.undoIDs[:0]
	e.undoVals = e.undoVals[:0]
	e.changed = e.changed[:0]
	if e.vals[id] == v {
		return nil
	}
	e.setVal(id, v)

	// Level-ordered worklist sweep over the fanout cone.
	startLvl := e.c.Gates[id].Level
	for l := range e.queue {
		e.queue[l] = e.queue[l][:0]
	}
	for _, rd := range e.c.Gates[id].Fanout {
		e.enqueue(rd)
	}
	for lvl := startLvl; lvl <= e.c.MaxLevel(); lvl++ {
		for _, n := range e.queue[lvl] {
			e.dirty[n] = false
			g := &e.c.Gates[n]
			nv := EvalScalarGate(g.Type, g.Fanin, func(f netlist.NetID) logic.Value { return e.vals[f] })
			if nv != e.vals[n] {
				e.setVal(n, nv)
				for _, rd := range g.Fanout {
					e.enqueue(rd)
				}
			}
		}
		e.queue[lvl] = e.queue[lvl][:0]
	}
	return e.changed
}

// Restore undoes the most recent Perturb. Calling it with no perturbation
// outstanding is a no-op.
func (e *EventSim) Restore() {
	for i := len(e.undoIDs) - 1; i >= 0; i-- {
		e.vals[e.undoIDs[i]] = e.undoVals[i]
	}
	e.undoIDs = e.undoIDs[:0]
	e.undoVals = e.undoVals[:0]
}

func (e *EventSim) setVal(n netlist.NetID, nv logic.Value) {
	e.undoIDs = append(e.undoIDs, n)
	e.undoVals = append(e.undoVals, e.vals[n])
	e.vals[n] = nv
	e.changed = append(e.changed, n)
}

func (e *EventSim) enqueue(n netlist.NetID) {
	if !e.dirty[n] {
		e.dirty[n] = true
		lvl := e.c.Gates[n].Level
		e.queue[lvl] = append(e.queue[lvl], n)
	}
}

// PropagateFrom is Perturb with a closure-based undo handle, kept for
// callers that want the paired form:
//
//	changed, restore := es.PropagateFrom(n, v)
//	... inspect es.Value(po) for POs of interest ...
//	restore()
//
// The returned changed slice is owned by the simulator and valid until the
// next perturbation.
func (e *EventSim) PropagateFrom(id netlist.NetID, v logic.Value) (changed []netlist.NetID, restore func()) {
	return e.Perturb(id, v), e.Restore
}
