package sim

import (
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
)

// EventSim is an event-driven incremental scalar simulator. After a full
// baseline evaluation, PropagateFrom re-evaluates only the fan-out cone of a
// changed net, which is much cheaper than full re-simulation when analyzing
// many single-net perturbations of the same pattern (brute-force criticality
// checks, candidate vetting).
type EventSim struct {
	c     *netlist.Circuit
	vals  []logic.Value
	dirty []bool
	queue [][]netlist.NetID // per-level worklists
}

// NewEventSim creates an event-driven simulator for the finalized circuit.
func NewEventSim(c *netlist.Circuit) *EventSim {
	if !c.Finalized() {
		panic("sim: circuit not finalized")
	}
	return &EventSim{
		c:     c,
		vals:  make([]logic.Value, c.NumGates()),
		dirty: make([]bool, c.NumGates()),
		queue: make([][]netlist.NetID, c.MaxLevel()+1),
	}
}

// Baseline fully evaluates pattern p (with optional forced nets) and stores
// the result as the incremental starting point.
func (e *EventSim) Baseline(p Pattern, force map[netlist.NetID]logic.Value) error {
	vals, err := EvalScalar(e.c, p, force)
	if err != nil {
		return err
	}
	copy(e.vals, vals)
	return nil
}

// Value returns the current value of net id.
func (e *EventSim) Value(id netlist.NetID) logic.Value { return e.vals[id] }

// Values returns the current value slice (owned by the simulator).
func (e *EventSim) Values() []logic.Value { return e.vals }

// PropagateFrom forces net id to v and incrementally re-evaluates its
// fan-out cone. It returns the set of nets whose value changed (including id
// itself if it changed) and a restore function that undoes the perturbation
// in O(changed) time. Typical usage:
//
//	changed, restore := es.PropagateFrom(n, v)
//	... inspect es.Value(po) for POs of interest ...
//	restore()
func (e *EventSim) PropagateFrom(id netlist.NetID, v logic.Value) (changed []netlist.NetID, restore func()) {
	old := e.vals[id]
	if old == v {
		return nil, func() {}
	}
	type undo struct {
		id  netlist.NetID
		old logic.Value
	}
	var undos []undo
	setVal := func(n netlist.NetID, nv logic.Value) {
		undos = append(undos, undo{n, e.vals[n]})
		e.vals[n] = nv
		changed = append(changed, n)
	}
	setVal(id, v)

	// Level-ordered worklist sweep over the fanout cone.
	startLvl := e.c.Gates[id].Level
	for l := range e.queue {
		e.queue[l] = e.queue[l][:0]
	}
	enqueue := func(n netlist.NetID) {
		if !e.dirty[n] {
			e.dirty[n] = true
			lvl := e.c.Gates[n].Level
			e.queue[lvl] = append(e.queue[lvl], n)
		}
	}
	for _, rd := range e.c.Gates[id].Fanout {
		enqueue(rd)
	}
	for lvl := startLvl; lvl <= e.c.MaxLevel(); lvl++ {
		for _, n := range e.queue[lvl] {
			e.dirty[n] = false
			g := &e.c.Gates[n]
			nv := EvalScalarGate(g.Type, g.Fanin, func(f netlist.NetID) logic.Value { return e.vals[f] })
			if nv != e.vals[n] {
				setVal(n, nv)
				for _, rd := range g.Fanout {
					enqueue(rd)
				}
			}
		}
		e.queue[lvl] = e.queue[lvl][:0]
	}

	return changed, func() {
		for i := len(undos) - 1; i >= 0; i-- {
			e.vals[undos[i].id] = undos[i].old
		}
	}
}
