package sim

import (
	"math/rand"
	"strings"
	"testing"

	"multidiag/internal/logic"
	"multidiag/internal/netlist"
)

const c17Bench = `
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func c17(t testing.TB) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBench("c17", strings.NewReader(c17Bench))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// refC17 computes c17's outputs directly from the Boolean equations.
func refC17(in [5]bool) (g22, g23 bool) {
	nand := func(a, b bool) bool { return !(a && b) }
	g10 := nand(in[0], in[2])
	g11 := nand(in[2], in[3])
	g16 := nand(in[1], g11)
	g19 := nand(g11, in[4])
	return nand(g10, g16), nand(g16, g19)
}

func TestParsePattern(t *testing.T) {
	p, err := ParsePattern("01X10")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "01X10" {
		t.Fatalf("round trip: %q", p.String())
	}
	if _, err := ParsePattern("012"); err == nil {
		t.Error("invalid pattern accepted")
	}
	q := p.Clone()
	q[0] = logic.One
	if p[0] != logic.Zero {
		t.Error("Clone shares storage")
	}
}

func TestScalarExhaustiveC17(t *testing.T) {
	c := c17(t)
	for m := 0; m < 32; m++ {
		var in [5]bool
		p := make(Pattern, 5)
		for i := 0; i < 5; i++ {
			in[i] = m>>i&1 == 1
			p[i] = logic.FromBool(in[i])
		}
		vals, err := EvalScalar(c, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		w22, w23 := refC17(in)
		if vals[c.NetByName("G22")] != logic.FromBool(w22) {
			t.Fatalf("m=%d G22 wrong", m)
		}
		if vals[c.NetByName("G23")] != logic.FromBool(w23) {
			t.Fatalf("m=%d G23 wrong", m)
		}
	}
}

func TestPackedExhaustiveC17(t *testing.T) {
	c := c17(t)
	s := New(c)
	pats := make([]Pattern, 32)
	for m := 0; m < 32; m++ {
		p := make(Pattern, 5)
		for i := 0; i < 5; i++ {
			p[i] = logic.FromBool(m>>i&1 == 1)
		}
		pats[m] = p
	}
	piv, n, err := s.PackPatterns(pats)
	if err != nil || n != 32 {
		t.Fatal(err, n)
	}
	if err := s.Run(piv); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 32; m++ {
		var in [5]bool
		for i := 0; i < 5; i++ {
			in[i] = m>>i&1 == 1
		}
		w22, w23 := refC17(in)
		if s.Value(c.NetByName("G22")).Get(uint(m)) != logic.FromBool(w22) {
			t.Fatalf("slot %d G22 wrong", m)
		}
		if s.Value(c.NetByName("G23")).Get(uint(m)) != logic.FromBool(w23) {
			t.Fatalf("slot %d G23 wrong", m)
		}
	}
	if got := len(s.POValues()); got != 2 {
		t.Fatalf("POValues len %d", got)
	}
}

// randomCircuit builds a seeded random DAG directly (the circuits package
// has a fuller generator; this local one keeps sim tests self-contained).
func randomCircuit(t testing.TB, seed int64, npi, ngate int) *netlist.Circuit {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	c := netlist.NewCircuit("rand")
	ids := make([]netlist.NetID, 0, npi+ngate)
	for i := 0; i < npi; i++ {
		ids = append(ids, c.MustAddGate(netlist.Input, "pi"+itoa(i)))
	}
	types := []netlist.GateType{
		netlist.And, netlist.Or, netlist.Nand, netlist.Nor,
		netlist.Xor, netlist.Xnor, netlist.Not, netlist.Buf,
	}
	for i := 0; i < ngate; i++ {
		typ := types[r.Intn(len(types))]
		var fanin []netlist.NetID
		nin := 1
		if typ != netlist.Not && typ != netlist.Buf {
			nin = 2 + r.Intn(2)
		}
		for j := 0; j < nin; j++ {
			fanin = append(fanin, ids[r.Intn(len(ids))])
		}
		ids = append(ids, c.MustAddGate(typ, "g"+itoa(i), fanin...))
	}
	// Last few nets become POs, plus any dangling net.
	for i := len(ids) - 3; i < len(ids); i++ {
		if err := c.MarkPO(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	return c
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// TestPackedMatchesScalar verifies the two simulators agree on random
// circuits and random (possibly X-bearing) patterns.
func TestPackedMatchesScalar(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := randomCircuit(t, seed, 8, 60)
		s := New(c)
		r := rand.New(rand.NewSource(seed + 100))
		pats := make([]Pattern, logic.W)
		for i := range pats {
			p := make(Pattern, len(c.PIs))
			for j := range p {
				p[j] = logic.Value(r.Intn(3)) // includes X
			}
			pats[i] = p
		}
		piv, _, err := s.PackPatterns(pats)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(piv); err != nil {
			t.Fatal(err)
		}
		for slot, p := range pats {
			vals, err := EvalScalar(c, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			for id := range vals {
				got := s.Value(netlist.NetID(id)).Get(uint(slot))
				if got != vals[id] {
					t.Fatalf("seed %d slot %d net %s: packed %v scalar %v",
						seed, slot, c.NameOf(netlist.NetID(id)), got, vals[id])
				}
			}
		}
	}
}

func TestPackPatternPadding(t *testing.T) {
	c := c17(t)
	s := New(c)
	p, _ := ParsePattern("10101")
	piv, n, err := s.PackPatterns([]Pattern{p})
	if err != nil || n != 1 {
		t.Fatal(err, n)
	}
	// All 64 slots should replicate the single pattern (no X padding).
	for i, pi := range piv {
		for slot := uint(0); slot < logic.W; slot++ {
			if pi.Get(slot) != p[i] {
				t.Fatalf("padding introduced wrong value at PI %d slot %d", i, slot)
			}
		}
	}
}

func TestPackErrors(t *testing.T) {
	c := c17(t)
	s := New(c)
	if _, _, err := s.PackPatterns(nil); err == nil {
		t.Error("empty pack accepted")
	}
	short, _ := ParsePattern("101")
	if _, _, err := s.PackPatterns([]Pattern{short}); err == nil {
		t.Error("width mismatch accepted")
	}
	if err := s.Run(make([]logic.PV64, 3)); err == nil {
		t.Error("Run with wrong PI count accepted")
	}
	if err := s.RunWithOverrides(make([]logic.PV64, 3), nil); err == nil {
		t.Error("RunWithOverrides with wrong PI count accepted")
	}
	if _, err := EvalScalar(c, short, nil); err == nil {
		t.Error("EvalScalar with wrong width accepted")
	}
}

func TestRunWithOverrides(t *testing.T) {
	c := c17(t)
	s := New(c)
	p, _ := ParsePattern("00000")
	piv, _, _ := s.PackPatterns([]Pattern{p})
	// With all-0 inputs G10=1, G16 depends on G11=1 → G16 = NAND(0,1)=1, G22= NAND(1,1)=0.
	if err := s.Run(piv); err != nil {
		t.Fatal(err)
	}
	base22 := s.Value(c.NetByName("G22")).Get(0)
	// Force G16 stuck-at-0: G22 = NAND(G10=1, 0) = 1 — must flip.
	err := s.RunWithOverrides(piv, map[netlist.NetID]logic.PV64{
		c.NetByName("G16"): logic.PVZero,
	})
	if err != nil {
		t.Fatal(err)
	}
	got22 := s.Value(c.NetByName("G22")).Get(0)
	if got22 == base22 {
		t.Fatalf("override had no effect: base %v got %v", base22, got22)
	}
	// Force a PI: overriding G1 to 1 must be visible at G1 itself.
	err = s.RunWithOverrides(piv, map[netlist.NetID]logic.PV64{
		c.NetByName("G1"): logic.PVOne,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Value(c.NetByName("G1")).Get(0) != logic.One {
		t.Error("PI override ignored")
	}
}

func TestScalarForce(t *testing.T) {
	c := c17(t)
	p, _ := ParsePattern("00000")
	base, _ := EvalScalar(c, p, nil)
	forced, _ := EvalScalar(c, p, map[netlist.NetID]logic.Value{
		c.NetByName("G16"): logic.Zero,
	})
	g22 := c.NetByName("G22")
	if base[g22] == forced[g22] {
		t.Error("scalar force had no effect")
	}
}

func TestXPropagation(t *testing.T) {
	c := c17(t)
	// With G3=X and the rest 0: G10 = NAND(0,X) = 1 (controlling 0),
	// G11 = NAND(X,0) = 1, G16 = NAND(0,1) = 1, G22 = NAND(1,1) = 0: X killed.
	p, _ := ParsePattern("00X00")
	vals, err := EvalScalar(c, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vals[c.NetByName("G22")] != logic.Zero {
		t.Fatalf("G22 = %v, want 0 (X must be masked)", vals[c.NetByName("G22")])
	}
	// With G3=X, G1=1: G10 = NAND(1,X) = X — X propagates.
	p2, _ := ParsePattern("10X00")
	vals2, _ := EvalScalar(c, p2, nil)
	if vals2[c.NetByName("G10")] != logic.X {
		t.Fatalf("G10 = %v, want X", vals2[c.NetByName("G10")])
	}
}

func TestEventSimMatchesFullResim(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		c := randomCircuit(t, seed, 8, 80)
		es := NewEventSim(c)
		r := rand.New(rand.NewSource(seed + 7))
		p := make(Pattern, len(c.PIs))
		for j := range p {
			p[j] = logic.FromBool(r.Intn(2) == 1)
		}
		if err := es.Baseline(p, nil); err != nil {
			t.Fatal(err)
		}
		base := append([]logic.Value(nil), es.Values()...)
		for trial := 0; trial < 40; trial++ {
			n := netlist.NetID(r.Intn(c.NumGates()))
			v := base[n].Not()
			_, restore := es.PropagateFrom(n, v)
			// Reference: full scalar sim with the net forced.
			ref, err := EvalScalar(c, p, map[netlist.NetID]logic.Value{n: v})
			if err != nil {
				t.Fatal(err)
			}
			for id := range ref {
				if es.Value(netlist.NetID(id)) != ref[id] {
					t.Fatalf("seed %d trial %d: event sim diverges at %s",
						seed, trial, c.NameOf(netlist.NetID(id)))
				}
			}
			restore()
			for id := range base {
				if es.Value(netlist.NetID(id)) != base[id] {
					t.Fatalf("restore failed at net %d", id)
				}
			}
		}
	}
}

func TestEventSimNoChange(t *testing.T) {
	c := c17(t)
	es := NewEventSim(c)
	p, _ := ParsePattern("11111")
	if err := es.Baseline(p, nil); err != nil {
		t.Fatal(err)
	}
	g22 := c.NetByName("G22")
	cur := es.Value(g22)
	changed, restore := es.PropagateFrom(g22, cur)
	if len(changed) != 0 {
		t.Error("no-op perturbation reported changes")
	}
	restore()
}
