package sim

import (
	"testing"

	"multidiag/internal/logic"
)

// BenchmarkPackedSimulate measures packed-parallel throughput: one Run
// evaluates 64 patterns, so patterns/sec = 64 · ops/sec.
func BenchmarkPackedSimulate(b *testing.B) {
	c := randomCircuit(b, 1, 32, 2000)
	s := New(c)
	piv := make([]logic.PV64, len(c.PIs))
	for i := range piv {
		piv[i] = logic.PVFromBits(uint64(i) * 0x9E3779B97F4A7C15)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Run(piv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalarSimulate measures the scalar three-valued reference
// simulator (one pattern per op).
func BenchmarkScalarSimulate(b *testing.B) {
	c := randomCircuit(b, 1, 32, 2000)
	p := make(Pattern, len(c.PIs))
	for i := range p {
		p[i] = logic.FromBool(i%2 == 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalScalar(c, p, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventPropagate measures incremental single-net perturbation.
func BenchmarkEventPropagate(b *testing.B) {
	c := randomCircuit(b, 1, 32, 2000)
	es := NewEventSim(c)
	p := make(Pattern, len(c.PIs))
	for i := range p {
		p[i] = logic.FromBool(i%2 == 0)
	}
	if err := es.Baseline(p, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := c.PIs[i%len(c.PIs)]
		_, restore := es.PropagateFrom(n, es.Value(n).Not())
		restore()
	}
}
