// Package sim provides fault-free simulation of gate-level circuits in two
// forms:
//
//   - a levelized, 64-way packed-parallel three-valued simulator (Simulator)
//     that evaluates 64 patterns per pass and is the workhorse behind fault
//     simulation, diagnosis and the experiment harness;
//   - a scalar three-valued evaluator (EvalScalar) used where per-pattern
//     flexibility matters more than throughput, e.g. X-masking analysis and
//     critical path tracing.
//
// Both simulators share the gate semantics defined by the logic package, so
// the property "packed ≡ scalar" is testable and tested.
package sim

import (
	"fmt"

	"multidiag/internal/logic"
	"multidiag/internal/netlist"
)

// Pattern is one input assignment: one logic.Value per primary input, in the
// circuit's PI declaration order.
type Pattern []logic.Value

// ParsePattern parses a string like "01X10" into a Pattern.
func ParsePattern(s string) (Pattern, error) {
	p := make(Pattern, len(s))
	for i := 0; i < len(s); i++ {
		v, err := logic.ParseValue(s[i : i+1])
		if err != nil {
			return nil, fmt.Errorf("sim: pattern %q position %d: %v", s, i, err)
		}
		p[i] = v
	}
	return p, nil
}

// String renders the pattern as a 0/1/X string.
func (p Pattern) String() string {
	b := make([]byte, len(p))
	for i, v := range p {
		b[i] = v.String()[0]
	}
	return string(b)
}

// Clone returns a copy of the pattern.
func (p Pattern) Clone() Pattern {
	return append(Pattern(nil), p...)
}

// Simulator is a levelized packed-parallel simulator bound to one finalized
// circuit. It is not safe for concurrent use; create one per goroutine.
type Simulator struct {
	c    *netlist.Circuit
	vals []logic.PV64 // per-net packed values of the most recent Run
}

// New creates a simulator for the finalized circuit c.
func New(c *netlist.Circuit) *Simulator {
	if !c.Finalized() {
		panic("sim: circuit not finalized")
	}
	return &Simulator{c: c, vals: make([]logic.PV64, c.NumGates())}
}

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *netlist.Circuit { return s.c }

// PackPatterns packs up to logic.W patterns (all of the circuit's PI width)
// into per-PI packed vectors. Unused slots are padded with the last
// pattern's values so they never introduce spurious X's. It returns the
// per-PI vectors and the number of valid slots.
func (s *Simulator) PackPatterns(pats []Pattern) ([]logic.PV64, int, error) {
	if len(pats) == 0 || len(pats) > logic.W {
		return nil, 0, fmt.Errorf("sim: need 1..%d patterns, got %d", logic.W, len(pats))
	}
	npi := len(s.c.PIs)
	piv := make([]logic.PV64, npi)
	for pi := 0; pi < npi; pi++ {
		var v logic.PV64
		for slot := 0; slot < logic.W; slot++ {
			idx := slot
			if idx >= len(pats) {
				idx = len(pats) - 1
			}
			if len(pats[idx]) != npi {
				return nil, 0, fmt.Errorf("sim: pattern %d has width %d, want %d", idx, len(pats[idx]), npi)
			}
			v = v.Set(uint(slot), pats[idx][pi])
		}
		piv[pi] = v
	}
	return piv, len(pats), nil
}

// Run simulates the packed PI assignment (one PV64 per PI, in PI order) and
// leaves per-net values retrievable via Value/Values.
func (s *Simulator) Run(piVals []logic.PV64) error {
	if len(piVals) != len(s.c.PIs) {
		return fmt.Errorf("sim: got %d PI vectors, want %d", len(piVals), len(s.c.PIs))
	}
	for i, pi := range s.c.PIs {
		s.vals[pi] = piVals[i]
	}
	for _, id := range s.c.LevelOrder() {
		g := &s.c.Gates[id]
		if g.Type == netlist.Input {
			continue
		}
		s.vals[id] = evalPacked(g.Type, g.Fanin, s.vals)
	}
	return nil
}

// RunWithOverrides simulates like Run but forces the listed nets to fixed
// packed values after their natural evaluation; downstream gates observe the
// forced value. This is the primitive under stuck-at fault simulation and
// X-injection: forcing net n to PVX models "value unknown at n".
//
// Overrides on primary inputs replace the applied value.
func (s *Simulator) RunWithOverrides(piVals []logic.PV64, force map[netlist.NetID]logic.PV64) error {
	if len(piVals) != len(s.c.PIs) {
		return fmt.Errorf("sim: got %d PI vectors, want %d", len(piVals), len(s.c.PIs))
	}
	for i, pi := range s.c.PIs {
		s.vals[pi] = piVals[i]
		if fv, ok := force[pi]; ok {
			s.vals[pi] = fv
		}
	}
	for _, id := range s.c.LevelOrder() {
		g := &s.c.Gates[id]
		if g.Type == netlist.Input {
			continue
		}
		v := evalPacked(g.Type, g.Fanin, s.vals)
		if fv, ok := force[id]; ok {
			v = fv
		}
		s.vals[id] = v
	}
	return nil
}

// Value returns the packed value of net id from the most recent Run.
func (s *Simulator) Value(id netlist.NetID) logic.PV64 { return s.vals[id] }

// Values returns the full per-net value slice of the most recent Run. The
// slice is owned by the simulator; callers must copy before the next Run if
// they need persistence.
func (s *Simulator) Values() []logic.PV64 { return s.vals }

// POValues returns the packed values at the primary outputs, in PO order.
func (s *Simulator) POValues() []logic.PV64 {
	out := make([]logic.PV64, len(s.c.POs))
	for i, po := range s.c.POs {
		out[i] = s.vals[po]
	}
	return out
}

// evalPacked evaluates one gate over packed inputs.
func evalPacked(t netlist.GateType, fanin []netlist.NetID, vals []logic.PV64) logic.PV64 {
	switch t {
	case netlist.Buf:
		return vals[fanin[0]]
	case netlist.Not:
		return vals[fanin[0]].Not()
	case netlist.And, netlist.Nand:
		acc := vals[fanin[0]]
		for _, f := range fanin[1:] {
			acc = acc.And(vals[f])
		}
		if t == netlist.Nand {
			acc = acc.Not()
		}
		return acc
	case netlist.Or, netlist.Nor:
		acc := vals[fanin[0]]
		for _, f := range fanin[1:] {
			acc = acc.Or(vals[f])
		}
		if t == netlist.Nor {
			acc = acc.Not()
		}
		return acc
	case netlist.Xor, netlist.Xnor:
		acc := vals[fanin[0]]
		for _, f := range fanin[1:] {
			acc = acc.Xor(vals[f])
		}
		if t == netlist.Xnor {
			acc = acc.Not()
		}
		return acc
	}
	// Input handled by caller; unreachable for valid circuits.
	return logic.PVX
}

// EvalScalarGate evaluates one gate over scalar three-valued inputs given as
// a lookup function.
func EvalScalarGate(t netlist.GateType, fanin []netlist.NetID, val func(netlist.NetID) logic.Value) logic.Value {
	switch t {
	case netlist.Buf:
		return val(fanin[0])
	case netlist.Not:
		return val(fanin[0]).Not()
	case netlist.And, netlist.Nand:
		acc := val(fanin[0])
		for _, f := range fanin[1:] {
			acc = acc.And(val(f))
		}
		if t == netlist.Nand {
			acc = acc.Not()
		}
		return acc
	case netlist.Or, netlist.Nor:
		acc := val(fanin[0])
		for _, f := range fanin[1:] {
			acc = acc.Or(val(f))
		}
		if t == netlist.Nor {
			acc = acc.Not()
		}
		return acc
	case netlist.Xor, netlist.Xnor:
		acc := val(fanin[0])
		for _, f := range fanin[1:] {
			acc = acc.Xor(val(f))
		}
		if t == netlist.Xnor {
			acc = acc.Not()
		}
		return acc
	}
	return logic.X
}

// EvalScalar simulates one pattern through the whole circuit and returns the
// per-net scalar values. force, if non-nil, pins nets to fixed values (the
// scalar analogue of RunWithOverrides).
func EvalScalar(c *netlist.Circuit, p Pattern, force map[netlist.NetID]logic.Value) ([]logic.Value, error) {
	if len(p) != len(c.PIs) {
		return nil, fmt.Errorf("sim: pattern width %d, want %d", len(p), len(c.PIs))
	}
	vals := make([]logic.Value, c.NumGates())
	for i := range vals {
		vals[i] = logic.X
	}
	for i, pi := range c.PIs {
		vals[pi] = p[i]
		if fv, ok := force[pi]; ok {
			vals[pi] = fv
		}
	}
	get := func(id netlist.NetID) logic.Value { return vals[id] }
	for _, id := range c.LevelOrder() {
		g := &c.Gates[id]
		if g.Type == netlist.Input {
			continue
		}
		v := EvalScalarGate(g.Type, g.Fanin, get)
		if fv, ok := force[id]; ok {
			v = fv
		}
		vals[id] = v
	}
	return vals, nil
}
