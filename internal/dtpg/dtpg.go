// Package dtpg generates *diagnostic* test patterns: patterns that
// distinguish between fault candidates the production test set cannot tell
// apart. Diagnosis quality is bounded by the test set's resolution — two
// candidates with identical syndromes form one equivalence class — and the
// classical remedy is to generate a pattern on which their predicted
// responses differ, re-test the device, and re-diagnose with the extended
// evidence. This package provides:
//
//   - FindDistinguishing: one pattern separating two stuck-at hypotheses;
//   - DistinguishSet: patterns splitting every distinguishable pair in a
//     candidate list;
//   - ImproveResolution: the closed diagnosis loop (diagnose → distinguish
//     → re-test → re-diagnose) against a tester callback.
//
// Distinguishing-pattern search runs in two phases, mirroring the ATPG
// flow: a cheap random phase (evaluate random patterns on both faulty
// machines with the event-driven simulator), then a structural phase that
// targets sites where exactly one of the two faults is excited.
package dtpg

import (
	"fmt"
	"math/rand"

	"multidiag/internal/bitset"
	"multidiag/internal/core"
	"multidiag/internal/fault"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

// Config tunes the distinguishing-pattern search.
type Config struct {
	Seed int64
	// RandomBudget is the number of random patterns tried per pair
	// (default 256).
	RandomBudget int
	// MaxRounds bounds the ImproveResolution loop (default 3).
	MaxRounds int
	// MaxPairsPerRound bounds how many candidate pairs are split per round
	// (default 16).
	MaxPairsPerRound int
}

func (cfg *Config) fill() {
	if cfg.RandomBudget <= 0 {
		cfg.RandomBudget = 256
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 3
	}
	if cfg.MaxPairsPerRound <= 0 {
		cfg.MaxPairsPerRound = 16
	}
}

// responsesDiffer simulates both faulty machines under p and reports
// whether any PO differs determinately.
func responsesDiffer(c *netlist.Circuit, p sim.Pattern, fa, fb fault.StuckAt) (bool, error) {
	va, err := sim.EvalScalar(c, p, forceOf(fa))
	if err != nil {
		return false, err
	}
	vb, err := sim.EvalScalar(c, p, forceOf(fb))
	if err != nil {
		return false, err
	}
	for _, po := range c.POs {
		if va[po].IsKnown() && vb[po].IsKnown() && va[po] != vb[po] {
			return true, nil
		}
	}
	return false, nil
}

func forceOf(f fault.StuckAt) map[netlist.NetID]logic.Value {
	v := logic.Zero
	if f.Value1 {
		v = logic.One
	}
	return map[netlist.NetID]logic.Value{f.Net: v}
}

// FindDistinguishing searches for a pattern on which fa and fb produce
// different primary-output responses. ok is false when the budget is
// exhausted (the faults may be functionally equivalent).
func FindDistinguishing(c *netlist.Circuit, fa, fb fault.StuckAt, cfg Config) (sim.Pattern, bool, error) {
	cfg.fill()
	r := rand.New(rand.NewSource(cfg.Seed))
	// Phase 1: random search.
	p := make(sim.Pattern, len(c.PIs))
	for try := 0; try < cfg.RandomBudget; try++ {
		for i := range p {
			p[i] = logic.FromBool(r.Intn(2) == 1)
		}
		diff, err := responsesDiffer(c, p, fa, fb)
		if err != nil {
			return nil, false, err
		}
		if diff {
			return p.Clone(), true, nil
		}
	}
	// Phase 2: structural targeting. A pattern distinguishing fa from fb
	// exists iff some pattern detects exactly one of them (responses can
	// also differ when both are detected at different outputs, but the
	// exactly-one case is the common one and PODEM-expressible): target
	// "detect fa while fb's site holds its stuck value" and vice versa —
	// when fb's site already carries fb's stuck value, machine-b equals the
	// fault-free machine, so detecting fa guarantees a difference.
	for _, ord := range [2][2]fault.StuckAt{{fa, fb}, {fb, fa}} {
		target, hold := ord[0], ord[1]
		pats := targetWithHold(c, target, hold, r, cfg.RandomBudget/4)
		for _, p := range pats {
			diff, err := responsesDiffer(c, p, fa, fb)
			if err != nil {
				return nil, false, err
			}
			if diff {
				return p, true, nil
			}
		}
	}
	return nil, false, nil
}

// targetWithHold produces candidate patterns detecting `target` while the
// `hold` site rests at its stuck value, by constrained random sampling:
// random patterns are filtered for hold-site value and target excitation,
// then checked for detection of target.
func targetWithHold(c *netlist.Circuit, target, hold fault.StuckAt, r *rand.Rand, budget int) []sim.Pattern {
	var out []sim.Pattern
	holdVal := logic.FromBool(hold.Value1)
	targetBad := logic.FromBool(target.Value1)
	p := make(sim.Pattern, len(c.PIs))
	for try := 0; try < budget && len(out) < 4; try++ {
		for i := range p {
			p[i] = logic.FromBool(r.Intn(2) == 1)
		}
		good, err := sim.EvalScalar(c, p, nil)
		if err != nil {
			return out
		}
		if good[hold.Net] != holdVal {
			continue // hold site would itself be excited
		}
		if good[target.Net] == targetBad {
			continue // target not excited
		}
		// Detection check for target alone.
		bad, err := sim.EvalScalar(c, p, forceOf(target))
		if err != nil {
			return out
		}
		for _, po := range c.POs {
			if good[po].IsKnown() && bad[po].IsKnown() && good[po] != bad[po] {
				out = append(out, p.Clone())
				break
			}
		}
	}
	return out
}

// Pair identifies two candidate hypotheses to split.
type Pair struct {
	A, B fault.StuckAt
}

// DistinguishSet finds patterns splitting as many of the given pairs as
// possible; returns the patterns and the pairs that remained inseparable
// within budget.
func DistinguishSet(c *netlist.Circuit, pairs []Pair, cfg Config) ([]sim.Pattern, []Pair, error) {
	cfg.fill()
	var (
		pats  []sim.Pattern
		stuck []Pair
	)
	for i, pr := range pairs {
		// A pattern found for an earlier pair may already split this one.
		already := false
		for _, p := range pats {
			diff, err := responsesDiffer(c, p, pr.A, pr.B)
			if err != nil {
				return nil, nil, err
			}
			if diff {
				already = true
				break
			}
		}
		if already {
			continue
		}
		sub := cfg
		sub.Seed = cfg.Seed + int64(i)*7919
		p, ok, err := FindDistinguishing(c, pr.A, pr.B, sub)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			pats = append(pats, p)
		} else {
			stuck = append(stuck, pr)
		}
	}
	return pats, stuck, nil
}

// TesterFunc re-tests the physical device with additional patterns and
// returns their datalog (pattern indices local to the given set). The
// experiment harness wraps the injected device model; a production
// deployment would wrap real ATE retest.
type TesterFunc func(pats []sim.Pattern) (*tester.Datalog, error)

// LoopResult reports one ImproveResolution run.
type LoopResult struct {
	Result        *core.Result
	Patterns      []sim.Pattern // full pattern set after all rounds
	Datalog       *tester.Datalog
	Rounds        int
	PatternsAdded int
	// ResolutionBefore/After count multiplet candidate *sites* (equivalence
	// class members included) before and after the loop.
	ResolutionBefore, ResolutionAfter int
}

// ImproveResolution closes the diagnosis loop: it diagnoses, derives the
// ambiguous pairs from the result (equivalence-class members and same-cover
// multiplet alternatives), generates distinguishing patterns, re-tests the
// device through apply, merges the new evidence and re-diagnoses — until
// the resolution stops improving or cfg.MaxRounds is reached.
func ImproveResolution(c *netlist.Circuit, pats []sim.Pattern, log *tester.Datalog, apply TesterFunc, dcfg core.Config, cfg Config) (*LoopResult, error) {
	cfg.fill()
	curPats := append([]sim.Pattern(nil), pats...)
	curLog := cloneDatalog(log)
	res, err := core.Diagnose(c, curPats, curLog, dcfg)
	if err != nil {
		return nil, err
	}
	lr := &LoopResult{Result: res, ResolutionBefore: resolutionSites(res)}
	for round := 0; round < cfg.MaxRounds; round++ {
		pairs := ambiguousPairs(res, cfg.MaxPairsPerRound)
		if len(pairs) == 0 {
			break
		}
		sub := cfg
		sub.Seed = cfg.Seed + int64(round)*104729
		newPats, _, err := DistinguishSet(c, pairs, sub)
		if err != nil {
			return nil, err
		}
		if len(newPats) == 0 {
			break
		}
		extra, err := apply(newPats)
		if err != nil {
			return nil, err
		}
		if extra.NumPatterns != len(newPats) || extra.NumPOs != curLog.NumPOs {
			return nil, fmt.Errorf("dtpg: tester returned %d-pattern/%d-PO datalog, want %d/%d",
				extra.NumPatterns, extra.NumPOs, len(newPats), curLog.NumPOs)
		}
		base := len(curPats)
		curPats = append(curPats, newPats...)
		for p, f := range extra.Fails {
			curLog.Fails[base+p] = f.Clone()
		}
		curLog.NumPatterns = len(curPats)
		lr.PatternsAdded += len(newPats)
		lr.Rounds++
		res, err = core.Diagnose(c, curPats, curLog, dcfg)
		if err != nil {
			return nil, err
		}
	}
	lr.Result = res
	lr.Patterns = curPats
	lr.Datalog = curLog
	lr.ResolutionAfter = resolutionSites(res)
	return lr, nil
}

// ambiguousPairs extracts up to max pairs worth splitting: each multiplet
// member against its equivalence-class members.
func ambiguousPairs(res *core.Result, max int) []Pair {
	var out []Pair
	for _, cd := range res.Multiplet {
		for _, e := range cd.Equivalent {
			if len(out) >= max {
				return out
			}
			out = append(out, Pair{A: cd.Fault, B: e})
		}
	}
	return out
}

// resolutionSites counts distinct candidate sites in the multiplet
// including equivalents.
func resolutionSites(res *core.Result) int {
	n := 0
	for _, cd := range res.Multiplet {
		n += 1 + len(cd.Equivalent)
	}
	return n
}

func cloneDatalog(d *tester.Datalog) *tester.Datalog {
	out := &tester.Datalog{
		CircuitName:    d.CircuitName,
		NumPatterns:    d.NumPatterns,
		NumPOs:         d.NumPOs,
		Fails:          make(map[int]bitset.Set, len(d.Fails)),
		Truncated:      d.Truncated,
		TruncatedAfter: d.TruncatedAfter,
	}
	for p, f := range d.Fails {
		out.Fails[p] = f.Clone()
	}
	return out
}
