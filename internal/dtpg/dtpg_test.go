package dtpg

import (
	"testing"

	"math/rand"
	"multidiag/internal/atpg"

	"multidiag/internal/circuits"
	"multidiag/internal/core"
	"multidiag/internal/defect"
	"multidiag/internal/fault"
	"multidiag/internal/fsim"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

func TestFindDistinguishingBasic(t *testing.T) {
	c := circuits.C17()
	// G22 sa1 and G23 sa1 fail at different POs: trivially distinguishable.
	fa := fault.StuckAt{Net: c.NetByName("G22"), Value1: true}
	fb := fault.StuckAt{Net: c.NetByName("G23"), Value1: true}
	p, ok, err := FindDistinguishing(c, fa, fb, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("distinguishable pair not split")
	}
	diff, err := responsesDiffer(c, p, fa, fb)
	if err != nil {
		t.Fatal(err)
	}
	if !diff {
		t.Fatal("returned pattern does not distinguish")
	}
}

func TestFindDistinguishingEquivalent(t *testing.T) {
	// a -> NOT -> z: "a sa0" and "z sa1" are functionally equivalent; no
	// pattern can split them.
	c := netlist.NewCircuit("inv")
	a := c.MustAddGate(netlist.Input, "a")
	z := c.MustAddGate(netlist.Not, "z", a)
	if err := c.MarkPO(z); err != nil {
		t.Fatal(err)
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	_, ok, err := FindDistinguishing(c,
		fault.StuckAt{Net: a, Value1: false},
		fault.StuckAt{Net: z, Value1: true},
		Config{Seed: 2, RandomBudget: 64})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("functionally equivalent pair 'split'")
	}
}

// TestFindDistinguishingStructuralPhase engineers a pair that random search
// with a tiny budget misses but the hold-site phase finds: two faults deep
// in an AND-tree where excitation is a low-probability event.
func TestFindDistinguishingStructuralPhase(t *testing.T) {
	c, err := circuits.MuxTree(3)
	if err != nil {
		t.Fatal(err)
	}
	// Faults on two different data inputs: distinguishing needs the select
	// lines to address one of them (probability 1/8 per side).
	fa := fault.StuckAt{Net: c.NetByName("d0"), Value1: true}
	fb := fault.StuckAt{Net: c.NetByName("d7"), Value1: true}
	p, ok, err := FindDistinguishing(c, fa, fb, Config{Seed: 3, RandomBudget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("tiny budget missed; acceptable for this stochastic phase")
	}
	diff, _ := responsesDiffer(c, p, fa, fb)
	if !diff {
		t.Fatal("pattern does not distinguish")
	}
}

func TestDistinguishSet(t *testing.T) {
	c := circuits.C17()
	pairs := []Pair{
		{A: fault.StuckAt{Net: c.NetByName("G22"), Value1: true}, B: fault.StuckAt{Net: c.NetByName("G23"), Value1: true}},
		{A: fault.StuckAt{Net: c.NetByName("G10"), Value1: false}, B: fault.StuckAt{Net: c.NetByName("G19"), Value1: false}},
	}
	pats, stuck, err := DistinguishSet(c, pairs, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(stuck) != 0 {
		t.Fatalf("pairs left unsplit: %v", stuck)
	}
	if len(pats) == 0 || len(pats) > 2 {
		t.Fatalf("pattern count %d", len(pats))
	}
}

// TestImproveResolution: a deliberately weak test set leaves an equivalence
// class; the loop must shrink multiplet sites without losing the hit.
func TestImproveResolution(t *testing.T) {
	c, err := circuits.RippleAdder(8)
	if err != nil {
		t.Fatal(err)
	}
	// Weak initial set: random patterns only, no PODEM — low diagnostic
	// resolution by construction.
	gen, err := atpg.Generate(c, atpg.Config{Seed: 21, RandomBudget: 16, RandomBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	pats := gen.Patterns
	target := c.NetByName("t1_4")
	ds := []defect.Defect{{Kind: defect.StuckNet, Net: target, Value1: true}}
	device, err := defect.Inject(c, ds)
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, device, pats)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) == 0 {
		t.Skip("weak set did not activate the defect")
	}
	apply := func(extra []sim.Pattern) (*tester.Datalog, error) {
		return tester.ApplyTest(c, device, extra)
	}
	lr, err := ImproveResolution(c, pats, log, apply, core.Config{}, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if lr.ResolutionAfter > lr.ResolutionBefore {
		t.Fatalf("resolution worsened: %d → %d", lr.ResolutionBefore, lr.ResolutionAfter)
	}
	if lr.Rounds > 0 && lr.PatternsAdded == 0 {
		t.Fatal("rounds ran without adding patterns")
	}
	// The defect must still be localized after refinement.
	found := false
	for _, cd := range lr.Result.Multiplet {
		for _, n := range cd.Nets() {
			if n == target {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("defect lost during refinement (res %d→%d)", lr.ResolutionBefore, lr.ResolutionAfter)
	}
	// The merged datalog must stay consistent with the pattern set.
	if lr.Datalog.NumPatterns != len(lr.Patterns) {
		t.Fatal("datalog/pattern count diverged")
	}
}

// TestImproveResolutionNoAmbiguity: a strong test set with a unique
// candidate should converge in zero rounds.
func TestImproveResolutionNoAmbiguity(t *testing.T) {
	c := circuits.C17()
	gen, err := atpg.Generate(c, atpg.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds := []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}}
	device, err := defect.Inject(c, ds)
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, device, gen.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	apply := func(extra []sim.Pattern) (*tester.Datalog, error) {
		calls++
		return tester.ApplyTest(c, device, extra)
	}
	lr, err := ImproveResolution(c, gen.Patterns, log, apply, core.Config{}, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if lr.ResolutionBefore == 1 && calls != 0 {
		t.Fatal("tester called though nothing was ambiguous")
	}
}

func TestResponsesDifferXSafety(t *testing.T) {
	c := circuits.C17()
	p := make(sim.Pattern, 5)
	for i := range p {
		p[i] = logic.X
	}
	diff, err := responsesDiffer(c, p,
		fault.StuckAt{Net: c.NetByName("G22"), Value1: true},
		fault.StuckAt{Net: c.NetByName("G23"), Value1: true})
	if err != nil {
		t.Fatal(err)
	}
	if diff {
		t.Fatal("all-X pattern cannot determinately distinguish")
	}
}

// TestDistinguishingAgreesWithSyndromes: when FindDistinguishing succeeds,
// appending the pattern must separate the two faults' syndromes.
func TestDistinguishingAgreesWithSyndromes(t *testing.T) {
	c, err := circuits.ALUSlice(4)
	if err != nil {
		t.Fatal(err)
	}
	fa := fault.StuckAt{Net: c.NetByName("sum1"), Value1: true}
	fb := fault.StuckAt{Net: c.NetByName("xori1"), Value1: true}
	p, ok, err := FindDistinguishing(c, fa, fb, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("pair not distinguishable within budget")
	}
	fs, err := fsim.NewFaultSim(c, []sim.Pattern{p})
	if err != nil {
		t.Fatal(err)
	}
	if fs.SimulateStuckAt(fa).Equal(fs.SimulateStuckAt(fb)) {
		t.Fatal("distinguishing pattern yields identical syndromes")
	}
}

// TestImproveResolutionRunsRounds reproduces a known-ambiguous case (the
// examples/resolution configuration) so the loop actually executes: a
// 500-gate circuit, five random patterns, one stuck defect whose initial
// diagnosis carries an equivalence class that one distinguishing pattern
// splits.
func TestImproveResolutionRunsRounds(t *testing.T) {
	c, err := circuits.Generate(circuits.GenConfig{
		Name: "demo500", Seed: 500, NumPIs: 20, NumGates: 500, NumPOs: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	pats := make([]sim.Pattern, 5)
	for i := range pats {
		p := make(sim.Pattern, len(c.PIs))
		for j := range p {
			p[j] = logic.FromBool(r.Intn(2) == 1)
		}
		pats[i] = p
	}
	ds, err := defect.Sample(c, defect.CampaignConfig{Seed: 5, NumDefects: 1, MixStuck: 1})
	if err != nil {
		t.Fatal(err)
	}
	device, err := defect.Inject(c, ds)
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, device, pats)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) == 0 {
		t.Skip("not activated")
	}
	apply := func(extra []sim.Pattern) (*tester.Datalog, error) {
		return tester.ApplyTest(c, device, extra)
	}
	lr, err := ImproveResolution(c, pats, log, apply, core.Config{}, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if lr.ResolutionBefore <= 1 {
		t.Skip("configuration no longer ambiguous")
	}
	if lr.Rounds == 0 || lr.PatternsAdded == 0 {
		t.Fatalf("loop did not run: rounds=%d added=%d", lr.Rounds, lr.PatternsAdded)
	}
	if lr.ResolutionAfter >= lr.ResolutionBefore {
		t.Fatalf("resolution not improved: %d → %d", lr.ResolutionBefore, lr.ResolutionAfter)
	}
}

// TestImproveResolutionTesterMismatch: a tester returning a malformed
// datalog must surface as an error, not corrupt the merge.
func TestImproveResolutionTesterMismatch(t *testing.T) {
	c, err := circuits.Generate(circuits.GenConfig{
		Name: "demo500", Seed: 500, NumPIs: 20, NumGates: 500, NumPOs: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	pats := make([]sim.Pattern, 5)
	for i := range pats {
		p := make(sim.Pattern, len(c.PIs))
		for j := range p {
			p[j] = logic.FromBool(r.Intn(2) == 1)
		}
		pats[i] = p
	}
	ds, err := defect.Sample(c, defect.CampaignConfig{Seed: 5, NumDefects: 1, MixStuck: 1})
	if err != nil {
		t.Fatal(err)
	}
	device, err := defect.Inject(c, ds)
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, device, pats)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) == 0 {
		t.Skip("not activated")
	}
	bad := func(extra []sim.Pattern) (*tester.Datalog, error) {
		return &tester.Datalog{NumPatterns: len(extra) + 1, NumPOs: len(c.POs)}, nil
	}
	lr, err := ImproveResolution(c, pats, log, bad, core.Config{}, Config{Seed: 9})
	if err == nil && lr.Rounds > 0 {
		t.Fatal("malformed tester datalog accepted")
	}
}
