// Package bitset provides a compact fixed-capacity bit set used to
// represent sets of primary outputs (failing-output syndromes) and sets of
// patterns throughout the fault-simulation and diagnosis code.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

// Set is a bit set over indices [0, capacity). The zero value of the slice
// type is an empty set of capacity 0; use New for a sized set.
type Set []uint64

// New returns an empty set able to hold indices [0, n).
func New(n int) Set {
	return make(Set, (n+63)/64)
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	return append(Set(nil), s...)
}

// Add inserts index i. i must be within capacity.
func (s Set) Add(i int) { s[i/64] |= 1 << (uint(i) % 64) }

// Remove deletes index i.
func (s Set) Remove(i int) { s[i/64] &^= 1 << (uint(i) % 64) }

// Has reports membership of i. Out-of-capacity indices report false.
func (s Set) Has(i int) bool {
	w := i / 64
	if w >= len(s) {
		return false
	}
	return s[w]>>(uint(i)%64)&1 == 1
}

// Count returns the number of members.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports set equality (capacities may differ; excess words must be
// zero).
func (s Set) Equal(t Set) bool {
	n := len(s)
	if len(t) > n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s) {
			a = s[i]
		}
		if i < len(t) {
			b = t[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is in t.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s {
		var b uint64
		if i < len(t) {
			b = t[i]
		}
		if w&^b != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share any member.
func (s Set) Intersects(t Set) bool {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		if s[i]&t[i] != 0 {
			return true
		}
	}
	return false
}

// UnionWith adds all members of t to s (s must have capacity ≥ t's used
// range).
func (s Set) UnionWith(t Set) {
	for i, w := range t {
		if i < len(s) {
			s[i] |= w
		}
	}
}

// IntersectWith removes members of s not in t.
func (s Set) IntersectWith(t Set) {
	for i := range s {
		var b uint64
		if i < len(t) {
			b = t[i]
		}
		s[i] &= b
	}
}

// SubtractWith removes members of t from s.
func (s Set) SubtractWith(t Set) {
	for i := range s {
		if i < len(t) {
			s[i] &^= t[i]
		}
	}
}

// IntersectCount returns |s ∩ t| without allocating.
func (s Set) IntersectCount(t Set) int {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s[i] & t[i])
	}
	return c
}

// SubtractCount returns |s \ t| without allocating.
func (s Set) SubtractCount(t Set) int {
	c := 0
	for i, w := range s {
		var b uint64
		if i < len(t) {
			b = t[i]
		}
		c += bits.OnesCount64(w &^ b)
	}
	return c
}

// Clear removes all members.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// AppendMembers appends the sorted member indices to dst and returns the
// extended slice. Hot loops pass a reused scratch slice (dst[:0]) to
// enumerate members without allocating; Members is the convenience form.
func (s Set) AppendMembers(dst []int) []int {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi*64+b)
			w &^= 1 << uint(b)
		}
	}
	return dst
}

// Members returns the sorted member indices.
func (s Set) Members() []int { return s.AppendMembers(nil) }

// String renders the set as "{1,5,9}".
func (s Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, m := range s.Members() {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(m))
	}
	sb.WriteByte('}')
	return sb.String()
}
