package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Count() != 3 || s.Empty() {
		t.Fatalf("count = %d", s.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Has(i) {
			t.Errorf("missing %d", i)
		}
	}
	if s.Has(1) || s.Has(128) || s.Has(1000) {
		t.Error("spurious members")
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("Remove failed")
	}
	got := s.Members()
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Errorf("Members = %v", got)
	}
	if s.String() != "{0,129}" {
		t.Errorf("String = %q", s.String())
	}
	s.Clear()
	if !s.Empty() {
		t.Error("Clear failed")
	}
}

func TestClone(t *testing.T) {
	s := New(70)
	s.Add(5)
	c := s.Clone()
	c.Add(69)
	if s.Has(69) {
		t.Error("Clone shares storage")
	}
	if !c.Has(5) {
		t.Error("Clone lost member")
	}
}

func TestEqualDifferentCapacities(t *testing.T) {
	a := New(64)
	b := New(256)
	a.Add(3)
	b.Add(3)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("equal sets with different capacity reported unequal")
	}
	b.Add(200)
	if a.Equal(b) {
		t.Error("unequal sets reported equal")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(128)
	b := New(128)
	for _, i := range []int{1, 5, 70} {
		a.Add(i)
	}
	for _, i := range []int{5, 70, 100} {
		b.Add(i)
	}
	if a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("subset misreported")
	}
	if !a.Intersects(b) {
		t.Error("intersects misreported")
	}
	if a.IntersectCount(b) != 2 {
		t.Errorf("IntersectCount = %d", a.IntersectCount(b))
	}
	if a.SubtractCount(b) != 1 {
		t.Errorf("SubtractCount = %d", a.SubtractCount(b))
	}
	u := a.Clone()
	u.UnionWith(b)
	if u.Count() != 4 {
		t.Errorf("union count = %d", u.Count())
	}
	if !a.SubsetOf(u) || !b.SubsetOf(u) {
		t.Error("union not superset")
	}
	i := a.Clone()
	i.IntersectWith(b)
	if i.Count() != 2 || !i.Has(5) || !i.Has(70) {
		t.Errorf("intersection wrong: %v", i)
	}
	d := a.Clone()
	d.SubtractWith(b)
	if d.Count() != 1 || !d.Has(1) {
		t.Errorf("difference wrong: %v", d)
	}
	empty := New(128)
	if !empty.SubsetOf(a) {
		t.Error("empty set must be subset of everything")
	}
	if empty.Intersects(a) {
		t.Error("empty set intersects")
	}
}

// TestAlgebraProperties exercises the algebra against a reference map-based
// implementation with testing/quick.
func TestAlgebraProperties(t *testing.T) {
	const n = 192
	mk := func(bits []uint8) (Set, map[int]bool) {
		s := New(n)
		m := map[int]bool{}
		for _, b := range bits {
			i := int(b) % n
			s.Add(i)
			m[i] = true
		}
		return s, m
	}
	f := func(xs, ys []uint8) bool {
		a, ma := mk(xs)
		b, mb := mk(ys)
		// Count
		if a.Count() != len(ma) {
			return false
		}
		// IntersectCount
		ic := 0
		for k := range ma {
			if mb[k] {
				ic++
			}
		}
		if a.IntersectCount(b) != ic {
			return false
		}
		// SubsetOf
		sub := true
		for k := range ma {
			if !mb[k] {
				sub = false
			}
		}
		if a.SubsetOf(b) != sub {
			return false
		}
		// Union round trip
		u := a.Clone()
		u.UnionWith(b)
		for k := range ma {
			if !u.Has(k) {
				return false
			}
		}
		for k := range mb {
			if !u.Has(k) {
				return false
			}
		}
		return u.Count() == len(ma)+len(mb)-ic
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
