// Package report renders experiment results as aligned ASCII tables and
// CSV, the two formats the experiment harness emits. Tables are what
// EXPERIMENTS.md quotes; CSV feeds external plotting.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderCSV writes the table as CSV (quotes cells containing commas).
func (t *Table) RenderCSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Series is a named (x, y) sequence — the figure-side analogue of Table.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a set of series sharing axes; Render prints the values the
// figure plots, one row per x with one column per series (the textual
// regeneration of a paper figure).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends a series and returns it for incremental filling.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Render writes the figure as a table: x column plus one column per series.
// Series are aligned by x value (missing points print as "-").
func (f *Figure) Render(w io.Writer) error {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	t := NewTable(fmt.Sprintf("%s (y: %s)", f.Title, f.YLabel), cols...)
	// Collect the sorted union of x values.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	for _, x := range xs {
		row := []interface{}{trimFloat(x)}
		for _, s := range f.Series {
			val := "-"
			for i, sx := range s.X {
				if sx == x {
					val = fmt.Sprintf("%.3f", s.Y[i])
					break
				}
			}
			row = append(row, val)
		}
		t.AddRow(row...)
	}
	return t.Render(w)
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
