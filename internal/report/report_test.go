package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "name", "value", "note")
	tab.AddRow("alpha", 1.5, "ok")
	tab.AddRow("b", 22, "longer note")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "1.500") {
		t.Error("float formatting missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Alignment: both data rows start their second column at the same
	// offset as the header's.
	hdrIdx := strings.Index(lines[1], "value")
	rowIdx := strings.Index(lines[3], "1.500")
	if hdrIdx != rowIdx {
		t.Errorf("columns misaligned: header %d row %d\n%s", hdrIdx, rowIdx, out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("x,y", `q"u`)
	tab.AddRow(1, 2)
	var sb strings.Builder
	if err := tab.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := "a,b\n\"x,y\",\"q\"\"u\"\n1,2\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestFigureRender(t *testing.T) {
	f := NewFigure("accuracy", "defects", "accuracy")
	s1 := f.AddSeries("ours")
	s2 := f.AddSeries("slat")
	s1.Add(1, 1.0)
	s1.Add(2, 0.9)
	s2.Add(1, 1.0)
	s2.Add(3, 0.2) // x=3 missing from s1
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ours") || !strings.Contains(out, "slat") {
		t.Error("series names missing")
	}
	if !strings.Contains(out, "0.900") {
		t.Error("values missing")
	}
	if !strings.Contains(out, "-") {
		t.Error("missing-point placeholder absent")
	}
	// X values sorted.
	i1 := strings.Index(out, "\n1 ")
	i2 := strings.Index(out, "\n2 ")
	i3 := strings.Index(out, "\n3 ")
	if !(i1 < i2 && i2 < i3) {
		t.Errorf("x values unsorted:\n%s", out)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(2) != "2" || trimFloat(2.5) != "2.5" {
		t.Error("trimFloat wrong")
	}
}
