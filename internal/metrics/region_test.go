package metrics

import (
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/defect"
	"multidiag/internal/netlist"
)

func TestEvaluateRegionRadiusZeroIsExact(t *testing.T) {
	c := circuits.C17()
	injected := []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("G16")}}
	cands := []Candidate{{Nets: []netlist.NetID{c.NetByName("G11")}}}
	r0 := EvaluateRegion(c, injected, cands, 0)
	ex := Evaluate(injected, cands)
	if r0 != ex {
		t.Fatal("radius 0 must equal exact Evaluate")
	}
	if rn := EvaluateRegion(nil, injected, cands, 2); rn != ex {
		t.Fatal("nil circuit must fall back to exact Evaluate")
	}
}

func TestEvaluateRegionRadiusOne(t *testing.T) {
	c := circuits.C17()
	// Defect on G16; candidate on G11 (an input net of the gate driving
	// G16) is distance 1; candidate on G22 (reader of G16) is distance 1;
	// candidate on G1 is distance 2.
	injected := []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("G16")}}
	for _, tc := range []struct {
		net  string
		rad  int
		want bool
	}{
		{"G16", 1, true}, // exact
		{"G11", 1, true}, // fanin of driver
		{"G22", 1, true}, // reader output
		{"G2", 1, true},  // co-input of driver gate
		{"G10", 1, true}, // co-input of reader G22
		{"G1", 1, false}, // two gates away
		{"G1", 2, true},  // reachable at radius 2
		{"G7", 1, false}, // unrelated cone
	} {
		cands := []Candidate{{Nets: []netlist.NetID{c.NetByName(tc.net)}}}
		s := EvaluateRegion(c, injected, cands, tc.rad)
		if got := s.Hits == 1; got != tc.want {
			t.Errorf("candidate %s radius %d: hit=%v want %v", tc.net, tc.rad, got, tc.want)
		}
	}
}

func TestEvaluateRegionBridgeEndpoints(t *testing.T) {
	c := circuits.C17()
	injected := []defect.Defect{{
		Kind: defect.BridgeDefect,
		Net:  c.NetByName("G10"), Aggressor: c.NetByName("G19"),
	}}
	// A candidate adjacent to the aggressor counts.
	cands := []Candidate{{Nets: []netlist.NetID{c.NetByName("G23")}}} // reader of G19
	s := EvaluateRegion(c, injected, cands, 1)
	if s.Hits != 1 {
		t.Fatal("aggressor-adjacent candidate not counted")
	}
}

func TestEvaluateRegionRanking(t *testing.T) {
	c := circuits.C17()
	injected := []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("G16")}}
	cands := []Candidate{
		{Nets: []netlist.NetID{c.NetByName("G7")}},  // miss
		{Nets: []netlist.NetID{c.NetByName("G16")}}, // hit at rank 2
	}
	s := EvaluateRegion(c, injected, cands, 1)
	if s.FirstHitRank != 2 || s.TruePositiveCands != 1 || s.Candidates != 2 {
		t.Fatalf("%+v", s)
	}
}
