package metrics

import (
	"testing"

	"multidiag/internal/defect"
	"multidiag/internal/fault"
	"multidiag/internal/netlist"
)

func TestEvaluateBasics(t *testing.T) {
	injected := []defect.Defect{
		{Kind: defect.StuckNet, Net: 10},
		{Kind: defect.BridgeDefect, Net: 20, Aggressor: 30},
	}
	cands := []Candidate{
		{Nets: []netlist.NetID{5}},  // miss
		{Nets: []netlist.NetID{30}}, // hits bridge via aggressor
		{Nets: []netlist.NetID{10}}, // hits stuck
	}
	s := Evaluate(injected, cands)
	if s.InjectedDefects != 2 || s.Hits != 2 {
		t.Fatalf("hits = %d", s.Hits)
	}
	if !s.Success() || s.Accuracy() != 1.0 {
		t.Fatal("full hit not recognized")
	}
	if s.Candidates != 3 || s.TruePositiveCands != 2 {
		t.Fatalf("cands %d tp %d", s.Candidates, s.TruePositiveCands)
	}
	if s.Precision() != 2.0/3.0 {
		t.Fatalf("precision %f", s.Precision())
	}
	if s.FirstHitRank != 2 {
		t.Fatalf("first hit rank %d", s.FirstHitRank)
	}
}

func TestEvaluateMiss(t *testing.T) {
	injected := []defect.Defect{{Kind: defect.StuckNet, Net: 10}}
	s := Evaluate(injected, []Candidate{{Nets: []netlist.NetID{11}}})
	if s.Success() || s.Hits != 0 || s.FirstHitRank != 0 {
		t.Fatalf("%+v", s)
	}
	if s.Accuracy() != 0 {
		t.Fatal("accuracy must be 0")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	s := Evaluate(nil, nil)
	if s.Success() || s.Accuracy() != 0 || s.Precision() != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestBridgeKindIgnored(t *testing.T) {
	// Bridge localization works regardless of bridge kind.
	injected := []defect.Defect{{
		Kind: defect.BridgeDefect, Net: 1, Aggressor: 2, BridgeKind: fault.WiredOR,
	}}
	s := Evaluate(injected, []Candidate{{Nets: []netlist.NetID{1}}})
	if !s.Success() {
		t.Fatal("victim-side hit not counted")
	}
}

func TestAggregate(t *testing.T) {
	var a Aggregate
	a.Add(Score{InjectedDefects: 2, Hits: 2, Candidates: 4, TruePositiveCands: 2, FirstHitRank: 1})
	a.Add(Score{InjectedDefects: 2, Hits: 1, Candidates: 2, TruePositiveCands: 1, FirstHitRank: 2})
	a.Add(Score{InjectedDefects: 2, Hits: 0, Candidates: 0})
	if a.Runs != 3 || a.Successes != 1 {
		t.Fatalf("%+v", a)
	}
	if a.SuccessRate() != 1.0/3.0 {
		t.Fatalf("success rate %f", a.SuccessRate())
	}
	if a.MeanAccuracy() != (1.0+0.5+0)/3 {
		t.Fatalf("mean acc %f", a.MeanAccuracy())
	}
	if a.MeanResolution() != 2.0 {
		t.Fatalf("mean res %f", a.MeanResolution())
	}
	if a.MeanFirstHitRank() != 1.5 {
		t.Fatalf("mean rank %f", a.MeanFirstHitRank())
	}
	var empty Aggregate
	if empty.SuccessRate() != 0 || empty.MeanAccuracy() != 0 ||
		empty.MeanPrecision() != 0 || empty.MeanResolution() != 0 || empty.MeanFirstHitRank() != 0 {
		t.Fatal("empty aggregate not zero")
	}
}
