// Package metrics scores diagnosis results against injected ground truth.
// The vocabulary follows the diagnosis literature:
//
//   - hit / accuracy: an injected defect is "hit" when the diagnosis
//     reports a candidate on one of the defect's nets (for bridges: the
//     victim or the aggressor — PFA inspects the physical neighbourhood of
//     a reported site, so either endpoint localizes the short);
//   - resolution: the number of candidate sites the physical failure
//     analyst must consider (smaller is better; 1 is ideal per defect);
//   - precision/recall over sites, and first-hit rank for ranked lists.
package metrics

import (
	"multidiag/internal/defect"
	"multidiag/internal/netlist"
)

// Candidate is the metric-level view of one reported suspect: the set of
// nets it points the failure analyst at. Diagnosis engines adapt their
// native candidate types to this.
type Candidate struct {
	Nets []netlist.NetID
}

// Score is the outcome of evaluating one diagnosis run.
type Score struct {
	// InjectedDefects is the ground-truth count.
	InjectedDefects int
	// Hits counts injected defects localized by at least one candidate.
	Hits int
	// Candidates is the number of reported candidates (the resolution).
	Candidates int
	// TruePositiveCands counts candidates that localize some injected
	// defect.
	TruePositiveCands int
	// FirstHitRank is the 1-based rank of the first candidate that hits any
	// injected defect; 0 when no candidate hits.
	FirstHitRank int
}

// Accuracy is Hits / InjectedDefects (1.0 when everything was found).
func (s Score) Accuracy() float64 {
	if s.InjectedDefects == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.InjectedDefects)
}

// Precision is TruePositiveCands / Candidates.
func (s Score) Precision() float64 {
	if s.Candidates == 0 {
		return 0
	}
	return float64(s.TruePositiveCands) / float64(s.Candidates)
}

// Success reports whether every injected defect was localized (the paper's
// per-device success criterion).
func (s Score) Success() bool { return s.InjectedDefects > 0 && s.Hits == s.InjectedDefects }

// defectNets returns the nets that localize defect d.
func defectNets(d defect.Defect) []netlist.NetID {
	if d.Kind == defect.BridgeDefect {
		return []netlist.NetID{d.Net, d.Aggressor}
	}
	return []netlist.NetID{d.Net}
}

// EvaluateRegion scores like Evaluate but counts a hit when a candidate net
// lies within graph distance `radius` of a defect net, where two nets are
// at distance 1 when they touch the same gate (one drives it, the other is
// its output, or both are its inputs). Radius 0 reduces to exact-site
// Evaluate.
//
// This is the "physical localization" view of accuracy used by
// failure-analysis-oriented evaluations: PFA de-layers a die region around
// the reported site, so a candidate one gate away from the defect (e.g. a
// gate-output candidate equivalent to the joint behaviour of its defective
// inputs) still directs the analyst to the right spot.
func EvaluateRegion(c *netlist.Circuit, injected []defect.Defect, candidates []Candidate, radius int) Score {
	if radius <= 0 || c == nil {
		return Evaluate(injected, candidates)
	}
	// Precompute the neighbourhood of every defect net once.
	neighborhoods := make([]map[netlist.NetID]bool, len(injected))
	for i, d := range injected {
		nb := make(map[netlist.NetID]bool)
		frontier := defectNets(d)
		for _, n := range frontier {
			nb[n] = true
		}
		for r := 0; r < radius; r++ {
			var next []netlist.NetID
			for _, n := range frontier {
				// Same-gate contacts: fan-ins of n's driver, n's readers'
				// outputs, and co-inputs of gates n feeds.
				for _, f := range c.Gates[n].Fanin {
					if !nb[f] {
						nb[f] = true
						next = append(next, f)
					}
				}
				for _, rd := range c.Gates[n].Fanout {
					if !nb[rd] {
						nb[rd] = true
						next = append(next, rd)
					}
					for _, f := range c.Gates[rd].Fanin {
						if !nb[f] {
							nb[f] = true
							next = append(next, f)
						}
					}
				}
			}
			frontier = next
		}
		neighborhoods[i] = nb
	}
	s := Score{InjectedDefects: len(injected), Candidates: len(candidates)}
	hit := make([]bool, len(injected))
	for rank, cand := range candidates {
		candHits := false
		for i := range injected {
			for _, cn := range cand.Nets {
				if neighborhoods[i][cn] {
					hit[i] = true
					candHits = true
				}
			}
		}
		if candHits {
			s.TruePositiveCands++
			if s.FirstHitRank == 0 {
				s.FirstHitRank = rank + 1
			}
		}
	}
	for _, h := range hit {
		if h {
			s.Hits++
		}
	}
	return s
}

// Evaluate scores a ranked candidate list against the injected defects.
func Evaluate(injected []defect.Defect, candidates []Candidate) Score {
	s := Score{InjectedDefects: len(injected), Candidates: len(candidates)}
	hit := make([]bool, len(injected))
	for rank, cand := range candidates {
		candHits := false
		for i, d := range injected {
			for _, dn := range defectNets(d) {
				for _, cn := range cand.Nets {
					if dn == cn {
						hit[i] = true
						candHits = true
					}
				}
			}
		}
		if candHits {
			s.TruePositiveCands++
			if s.FirstHitRank == 0 {
				s.FirstHitRank = rank + 1
			}
		}
	}
	for _, h := range hit {
		if h {
			s.Hits++
		}
	}
	return s
}

// Aggregate accumulates scores across a campaign.
type Aggregate struct {
	Runs       int
	Successes  int
	SumAcc     float64
	SumPrec    float64
	SumCands   int
	SumHitRank int // over runs with a hit
	RanksSeen  int
}

// Add accumulates one run.
func (a *Aggregate) Add(s Score) {
	a.Runs++
	if s.Success() {
		a.Successes++
	}
	a.SumAcc += s.Accuracy()
	a.SumPrec += s.Precision()
	a.SumCands += s.Candidates
	if s.FirstHitRank > 0 {
		a.SumHitRank += s.FirstHitRank
		a.RanksSeen++
	}
}

// SuccessRate is the fraction of fully localized devices.
func (a Aggregate) SuccessRate() float64 {
	if a.Runs == 0 {
		return 0
	}
	return float64(a.Successes) / float64(a.Runs)
}

// MeanAccuracy averages per-run accuracy.
func (a Aggregate) MeanAccuracy() float64 {
	if a.Runs == 0 {
		return 0
	}
	return a.SumAcc / float64(a.Runs)
}

// MeanPrecision averages per-run precision.
func (a Aggregate) MeanPrecision() float64 {
	if a.Runs == 0 {
		return 0
	}
	return a.SumPrec / float64(a.Runs)
}

// MeanResolution averages the candidate count.
func (a Aggregate) MeanResolution() float64 {
	if a.Runs == 0 {
		return 0
	}
	return float64(a.SumCands) / float64(a.Runs)
}

// MeanFirstHitRank averages the first-hit rank over runs that hit.
func (a Aggregate) MeanFirstHitRank() float64 {
	if a.RanksSeen == 0 {
		return 0
	}
	return float64(a.SumHitRank) / float64(a.RanksSeen)
}
