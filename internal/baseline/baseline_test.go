package baseline

import (
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/defect"
	"multidiag/internal/logic"
	"multidiag/internal/metrics"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

func exhaustivePatterns(npi int) []sim.Pattern {
	n := 1 << npi
	pats := make([]sim.Pattern, n)
	for m := 0; m < n; m++ {
		p := make(sim.Pattern, npi)
		for i := 0; i < npi; i++ {
			p[i] = logic.FromBool(m>>i&1 == 1)
		}
		pats[m] = p
	}
	return pats
}

func injectedLog(t *testing.T, c *netlist.Circuit, pats []sim.Pattern, ds []defect.Defect) *tester.Datalog {
	t.Helper()
	dev, err := defect.Inject(c, ds)
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, dev, pats)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func score(t *testing.T, c *netlist.Circuit, ds []defect.Defect, res *Result) metrics.Score {
	t.Helper()
	var cands []metrics.Candidate
	for _, nets := range res.Nets() {
		cands = append(cands, metrics.Candidate{Nets: nets})
	}
	return metrics.EvaluateRegion(c, ds, cands, 1)
}

// TestSingleDefectAllBaselines: on a single stuck defect with exhaustive
// patterns every baseline must succeed — the assumptions all hold there.
func TestSingleDefectAllBaselines(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	ds := []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}}
	log := injectedLog(t, c, pats, ds)

	slat, err := SLAT(c, pats, log, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !score(t, c, ds, slat).Success() {
		t.Errorf("SLAT missed a single stuck defect: %+v", slat.Multiplet)
	}
	if slat.NonSLATPatterns != 0 {
		t.Errorf("single stuck defect produced %d non-SLAT patterns", slat.NonSLATPatterns)
	}

	inter, err := Intersection(c, pats, log)
	if err != nil {
		t.Fatal(err)
	}
	if !score(t, c, ds, inter).Success() {
		t.Errorf("Intersection missed a single stuck defect: %+v", inter.Multiplet)
	}

	dict, err := BuildDictionary(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := dict.Diagnose(log, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !score(t, c, ds, dres).Success() {
		t.Errorf("Dictionary missed a single stuck defect: %+v", dres.Multiplet)
	}
}

// TestIntersectionCollapsesOnDoubleDefect demonstrates the failure mode the
// intersection baseline exists to exhibit: two defects with disjoint
// failing-pattern populations usually empty the global intersection.
func TestIntersectionDegradesOnMultiDefect(t *testing.T) {
	c, err := circuits.RippleAdder(8)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomPatterns(64, len(c.PIs))
	emptied := 0
	runs := 0
	for seed := int64(0); seed < 10; seed++ {
		ds, err := defect.Sample(c, defect.CampaignConfig{Seed: seed, NumDefects: 3, MixStuck: 1})
		if err != nil {
			t.Fatal(err)
		}
		dev, err := defect.Inject(c, ds)
		if err != nil {
			continue
		}
		log, err := tester.ApplyTest(c, dev, pats)
		if err != nil {
			t.Fatal(err)
		}
		if len(log.Fails) < 2 {
			continue
		}
		runs++
		res, err := Intersection(c, pats, log)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Multiplet) == 0 {
			emptied++
		}
	}
	if runs == 0 {
		t.Skip("no activated runs")
	}
	if emptied == 0 {
		t.Log("intersection never emptied on this campaign (unusual but possible)")
	}
}

// TestSLATCountsNonSLATPatterns: engineered double defect producing a
// jointly-failing pattern registers non-SLAT patterns.
func TestSLATCountsNonSLATPatterns(t *testing.T) {
	c, err := circuits.RippleAdder(6)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomPatterns(96, len(c.PIs))
	sawNonSLAT := false
	for seed := int64(0); seed < 20 && !sawNonSLAT; seed++ {
		ds, err := defect.Sample(c, defect.CampaignConfig{Seed: seed, NumDefects: 3})
		if err != nil {
			t.Fatal(err)
		}
		dev, err := defect.Inject(c, ds)
		if err != nil {
			continue
		}
		log, err := tester.ApplyTest(c, dev, pats)
		if err != nil {
			t.Fatal(err)
		}
		if len(log.Fails) == 0 {
			continue
		}
		res, err := SLAT(c, pats, log, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.NonSLATPatterns > 0 {
			sawNonSLAT = true
		}
	}
	if !sawNonSLAT {
		t.Error("no non-SLAT pattern observed across 20 multi-defect devices — SLAT classification suspicious")
	}
}

func TestDictionaryNearestMatchOnMultiDefect(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	dict, err := BuildDictionary(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	// Double defect: syndrome unlikely to be in the single-fault dictionary.
	ds := []defect.Defect{
		{Kind: defect.StuckNet, Net: c.NetByName("G10"), Value1: true},
		{Kind: defect.StuckNet, Net: c.NetByName("G19"), Value1: true},
	}
	log := injectedLog(t, c, pats, ds)
	if len(log.Fails) == 0 {
		t.Skip("not activated")
	}
	res, err := dict.Diagnose(log, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Multiplet) == 0 {
		t.Fatal("nearest-match returned nothing")
	}
	if len(res.Multiplet) > 5 {
		t.Fatalf("topK ignored: %d", len(res.Multiplet))
	}
}

func TestBaselinesOnCleanDevice(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	dev := c.Clone()
	if err := dev.Finalize(); err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, dev, pats)
	if err != nil {
		t.Fatal(err)
	}
	slat, err := SLAT(c, pats, log, 0)
	if err != nil || len(slat.Multiplet) != 0 {
		t.Error("SLAT on clean device")
	}
	inter, err := Intersection(c, pats, log)
	if err != nil || len(inter.Multiplet) != 0 {
		t.Error("Intersection on clean device")
	}
	dict, err := BuildDictionary(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := dict.Diagnose(log, 0)
	if err != nil || len(dres.Multiplet) != 0 {
		t.Error("Dictionary on clean device")
	}
}

func TestValidation(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	bad := &tester.Datalog{NumPatterns: 1, NumPOs: 2}
	if _, err := SLAT(c, pats, bad, 0); err == nil {
		t.Error("SLAT accepted bad datalog")
	}
	if _, err := Intersection(c, pats, bad); err == nil {
		t.Error("Intersection accepted bad datalog")
	}
	dict, err := BuildDictionary(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dict.Diagnose(bad, 0); err == nil {
		t.Error("Dictionary accepted bad datalog")
	}
}

func randomPatterns(n, width int) []sim.Pattern {
	// Deterministic linear-congruential fill keeps this helper seedless.
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 32
	}
	pats := make([]sim.Pattern, n)
	for i := range pats {
		p := make(sim.Pattern, width)
		for j := range p {
			p[j] = logic.FromBool(next()&1 == 1)
		}
		pats[i] = p
	}
	return pats
}

// TestPassFailDictionaryCoarser: the pass/fail dictionary must still find
// single stuck defects but with resolution no better than the
// full-response dictionary (and strictly worse somewhere on the circuit).
func TestPassFailDictionaryCoarser(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	dict, err := BuildDictionary(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	worseSomewhere := false
	for i := range c.Gates {
		if c.Gates[i].Type == netlist.Input {
			continue
		}
		for _, v1 := range []bool{false, true} {
			ds := []defect.Defect{{Kind: defect.StuckNet, Net: netlist.NetID(i), Value1: v1}}
			log := injectedLog(t, c, pats, ds)
			if len(log.Fails) == 0 {
				continue
			}
			full, err := dict.Diagnose(log, 0)
			if err != nil {
				t.Fatal(err)
			}
			pf, err := dict.DiagnosePassFail(log, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !score(t, c, ds, pf).Success() {
				t.Errorf("pass/fail dictionary missed %s=%v", c.Gates[i].Name, v1)
			}
			if len(pf.Multiplet) < len(full.Multiplet) {
				t.Errorf("pass/fail resolution better than full response at %s=%v (%d < %d)",
					c.Gates[i].Name, v1, len(pf.Multiplet), len(full.Multiplet))
			}
			if len(pf.Multiplet) > len(full.Multiplet) {
				worseSomewhere = true
			}
		}
	}
	if !worseSomewhere {
		t.Log("pass/fail never coarser on c17 (tiny circuit); acceptable but unusual")
	}
}

func TestPassFailDictionaryCleanAndValidation(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	dict, err := BuildDictionary(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	dev := c.Clone()
	if err := dev.Finalize(); err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, dev, pats)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dict.DiagnosePassFail(log, 0)
	if err != nil || len(res.Multiplet) != 0 {
		t.Error("clean device mishandled")
	}
	bad := &tester.Datalog{NumPatterns: 1, NumPOs: 2}
	if _, err := dict.DiagnosePassFail(bad, 0); err == nil {
		t.Error("bad datalog accepted")
	}
}
