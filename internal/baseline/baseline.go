// Package baseline implements the comparison diagnosis engines, each
// embodying exactly one of the failing-pattern assumptions the core engine
// removes:
//
//   - SLAT assumes every usable failing pattern is explainable by a single
//     stuck-at fault at a single location (per-pattern exact match), and
//     builds multiplets only from such patterns — failing patterns caused
//     jointly by several defects are discarded;
//
//   - Intersection is the classic single-defect effect-cause flow: suspect
//     sets from every failing pattern are intersected, so a second defect
//     that fails a disjoint pattern set usually empties the result;
//
//   - Dictionary is the cause-effect approach: a precomputed full-response
//     single-stuck-at dictionary is searched for the observed syndrome —
//     exact for single faults, structurally unable to represent multi-defect
//     syndromes (nearest-match fallback included, as deployed dictionaries
//     do).
//
// All three consume the same inputs as core.Diagnose and report the same
// candidate shape, so the experiment harness scores them identically.
package baseline

import (
	"fmt"
	"sort"
	"time"

	"multidiag/internal/bitset"
	"multidiag/internal/fault"
	"multidiag/internal/fsim"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

// Candidate is a baseline-reported suspect.
type Candidate struct {
	Fault fault.StuckAt
	// Equivalent lists further faults indistinguishable from Fault under
	// the applied test set (same explained-pattern set); SLAT fills this,
	// mirroring how deployed tools report whole equivalence classes.
	Equivalent []fault.StuckAt
	// Explained counts the failing patterns (SLAT) or failing bits
	// (dictionary distance complement) supporting the candidate.
	Explained int
}

// Result is a baseline diagnosis outcome.
type Result struct {
	// Multiplet is the selected candidate set (may be empty).
	Multiplet []Candidate
	// SLATPatterns / NonSLATPatterns partition the failing patterns for the
	// SLAT engine (zero for the others).
	SLATPatterns, NonSLATPatterns int
	// Elapsed is the wall-clock diagnosis time.
	Elapsed time.Duration
}

// Nets flattens the multiplet (equivalence classes included) for metric
// scoring.
func (r *Result) Nets() [][]netlist.NetID {
	out := make([][]netlist.NetID, len(r.Multiplet))
	for i, cd := range r.Multiplet {
		nets := []netlist.NetID{cd.Fault.Net}
		for _, e := range cd.Equivalent {
			nets = append(nets, e.Net)
		}
		out[i] = nets
	}
	return out
}

// candidateSeeds extracts per-failing-output stuck-at hypotheses via CPT —
// the same effect-cause front end the core engine uses, so baseline
// comparisons isolate the *assumption* differences, not the extraction.
func candidateSeeds(c *netlist.Circuit, pats []sim.Pattern, log *tester.Datalog) ([]fault.StuckAt, error) {
	cpt := fsim.NewCPT(c)
	seen := make(map[fault.StuckAt]bool)
	var out []fault.StuckAt
	for _, p := range log.FailingPatterns() {
		ok := true
		for _, v := range pats[p] {
			if !v.IsKnown() {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		pos := make([]netlist.NetID, 0, log.Fails[p].Count())
		for _, poIdx := range log.Fails[p].Members() {
			pos = append(pos, c.POs[poIdx])
		}
		union, _, vals, err := cpt.CriticalForOutputs(pats[p], pos)
		if err != nil {
			return nil, err
		}
		for id, cr := range union {
			if !cr || !vals[id].IsKnown() {
				continue
			}
			f := fault.StuckAt{Net: netlist.NetID(id), Value1: vals[id] == logic.Zero}
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Net != out[j].Net {
			return out[i].Net < out[j].Net
		}
		return !out[i].Value1 && out[j].Value1
	})
	return out, nil
}

// SLAT runs Single-Location-At-a-Time diagnosis.
//
// A failing pattern is a SLAT pattern when at least one single stuck-at
// fault explains it exactly: the fault's predicted failing outputs on that
// pattern equal the observed failing outputs. Multiplets are built by
// greedy cover over SLAT patterns only; non-SLAT patterns are discarded
// (the assumption under evaluation).
func SLAT(c *netlist.Circuit, pats []sim.Pattern, log *tester.Datalog, maxMultiplet int) (*Result, error) {
	res := &Result{}
	defer obs.Global().Span("baseline.slat").EndInto(&res.Elapsed)
	if maxMultiplet <= 0 {
		maxMultiplet = 10
	}
	if err := validate(c, pats, log); err != nil {
		return nil, err
	}
	failing := log.FailingPatterns()
	if len(failing) == 0 {
		return res, nil
	}
	seeds, err := candidateSeeds(c, pats, log)
	if err != nil {
		return nil, err
	}
	fs, err := fsim.NewFaultSim(c, pats)
	if err != nil {
		return nil, err
	}
	// explains[f] = set of failing-pattern positions f explains exactly.
	patIndex := make(map[int]int, len(failing))
	for i, p := range failing {
		patIndex[p] = i
	}
	type scored struct {
		f        fault.StuckAt
		explains bitset.Set
	}
	var cands []scored
	slatPattern := bitset.New(len(failing))
	for _, f := range seeds {
		syn := fs.SimulateStuckAt(f)
		ex := bitset.New(len(failing))
		for _, p := range failing {
			pred := syn.Fails[p]
			if pred != nil && pred.Equal(log.Fails[p]) {
				ex.Add(patIndex[p])
				slatPattern.Add(patIndex[p])
			}
		}
		if !ex.Empty() {
			cands = append(cands, scored{f: f, explains: ex})
		}
	}
	res.SLATPatterns = slatPattern.Count()
	res.NonSLATPatterns = len(failing) - res.SLATPatterns

	// Greedy cover of SLAT patterns.
	remaining := slatPattern.Clone()
	for len(res.Multiplet) < maxMultiplet && !remaining.Empty() {
		bestIdx, bestCov := -1, 0
		for i, cd := range cands {
			cov := cd.explains.IntersectCount(remaining)
			if cov > bestCov || (cov == bestCov && cov > 0 && bestIdx >= 0 && cd.f.Net < cands[bestIdx].f.Net) {
				bestIdx, bestCov = i, cov
			}
		}
		if bestIdx < 0 || bestCov == 0 {
			break
		}
		sel := Candidate{
			Fault:     cands[bestIdx].f,
			Explained: cands[bestIdx].explains.Count(),
		}
		// Attach the equivalence class: every candidate explaining exactly
		// the same pattern set is indistinguishable by this test set.
		for i, cd := range cands {
			if i != bestIdx && cd.explains.Equal(cands[bestIdx].explains) {
				sel.Equivalent = append(sel.Equivalent, cd.f)
			}
		}
		res.Multiplet = append(res.Multiplet, sel)
		remaining.SubtractWith(cands[bestIdx].explains)
	}
	return res, nil
}

// Intersection runs the classic single-defect effect-cause flow: per
// failing pattern, the suspect set is the union (over that pattern's
// failing outputs) of critical (net, stuck-value) candidates; the global
// suspect set is the intersection across failing patterns; passing patterns
// then vindicate suspects whose fault would have been observed.
func Intersection(c *netlist.Circuit, pats []sim.Pattern, log *tester.Datalog) (*Result, error) {
	res := &Result{}
	defer obs.Global().Span("baseline.intersect").EndInto(&res.Elapsed)
	if err := validate(c, pats, log); err != nil {
		return nil, err
	}
	failing := log.FailingPatterns()
	if len(failing) == 0 {
		return res, nil
	}
	cpt := fsim.NewCPT(c)
	var global map[fault.StuckAt]bool
	for _, p := range failing {
		determinate := true
		for _, v := range pats[p] {
			if !v.IsKnown() {
				determinate = false
				break
			}
		}
		if !determinate {
			continue
		}
		local := make(map[fault.StuckAt]bool)
		pos := make([]netlist.NetID, 0, log.Fails[p].Count())
		for _, poIdx := range log.Fails[p].Members() {
			pos = append(pos, c.POs[poIdx])
		}
		union, _, vals, err := cpt.CriticalForOutputs(pats[p], pos)
		if err != nil {
			return nil, err
		}
		for id, cr := range union {
			if !cr || !vals[id].IsKnown() {
				continue
			}
			local[fault.StuckAt{Net: netlist.NetID(id), Value1: vals[id] == logic.Zero}] = true
		}
		if global == nil {
			global = local
			continue
		}
		for f := range global {
			if !local[f] {
				delete(global, f)
			}
		}
	}
	if len(global) == 0 {
		return res, nil
	}
	// Vindication: a surviving suspect must not be observed on any passing
	// pattern.
	fs, err := fsim.NewFaultSim(c, pats)
	if err != nil {
		return nil, err
	}
	isFailing := make(map[int]bool, len(failing))
	for _, p := range failing {
		isFailing[p] = true
	}
	var out []fault.StuckAt
	for f := range global {
		syn := fs.SimulateStuckAt(f)
		ok := true
		for _, p := range syn.FailingPatterns() {
			if !isFailing[p] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Net != out[j].Net {
			return out[i].Net < out[j].Net
		}
		return !out[i].Value1 && out[j].Value1
	})
	for _, f := range out {
		res.Multiplet = append(res.Multiplet, Candidate{Fault: f, Explained: len(failing)})
	}
	return res, nil
}

// Dictionary runs cause-effect diagnosis against a precomputed
// single-stuck-at full-response dictionary. On an exact syndrome match the
// matching faults are returned; otherwise the nearest dictionary entries by
// failing-bit Hamming distance are returned (top-k), which is how deployed
// dictionary flows degrade on multi-defect devices.
type Dictionary struct {
	c    *netlist.Circuit
	dict *fsim.Dictionary
	pats []sim.Pattern
}

// BuildDictionary precomputes the dictionary for the collapsed stuck-at
// universe (the expensive step the effect-cause approach avoids).
func BuildDictionary(c *netlist.Circuit, pats []sim.Pattern) (*Dictionary, error) {
	sp := obs.Global().Span("baseline.build_dict")
	d, err := fsim.BuildDictionary(c, pats, fault.Collapse(c))
	sp.End()
	if err != nil {
		return nil, err
	}
	return &Dictionary{c: c, dict: d, pats: pats}, nil
}

// Diagnose looks the observed syndrome up in the dictionary.
func (d *Dictionary) Diagnose(log *tester.Datalog, topK int) (*Result, error) {
	res := &Result{}
	defer obs.Global().Span("baseline.dict").EndInto(&res.Elapsed)
	if topK <= 0 {
		topK = 5
	}
	if err := validate(d.c, d.pats, log); err != nil {
		return nil, err
	}
	observed := log.Syndrome()
	if len(log.Fails) == 0 {
		return res, nil
	}
	if hits := d.dict.Lookup(observed); len(hits) > 0 {
		for _, h := range hits {
			res.Multiplet = append(res.Multiplet, Candidate{
				Fault:     d.dict.Faults[h],
				Explained: observed.NumFailBits(),
			})
		}
		return res, nil
	}
	// Nearest match by symmetric difference over failing bits.
	type scored struct {
		idx  int
		dist int
	}
	var all []scored
	for i, syn := range d.dict.Syndromes {
		if !syn.Detected() {
			continue
		}
		all = append(all, scored{idx: i, dist: syndromeDistance(observed, syn)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].dist != all[j].dist {
			return all[i].dist < all[j].dist
		}
		return all[i].idx < all[j].idx
	})
	for i := 0; i < topK && i < len(all); i++ {
		res.Multiplet = append(res.Multiplet, Candidate{
			Fault:     d.dict.Faults[all[i].idx],
			Explained: observed.NumFailBits() - all[i].dist,
		})
	}
	return res, nil
}

// DiagnosePassFail looks the syndrome up using only the per-pattern
// pass/fail bit — the compressed "pass/fail dictionary" industrial flows
// keep when full-response storage is too large. Resolution is strictly
// worse than the full-response dictionary (faults differing only in which
// outputs fail become indistinguishable), which the comparison test
// quantifies.
func (d *Dictionary) DiagnosePassFail(log *tester.Datalog, topK int) (*Result, error) {
	res := &Result{}
	defer obs.Global().Span("baseline.dict_passfail").EndInto(&res.Elapsed)
	if topK <= 0 {
		topK = 5
	}
	if err := validate(d.c, d.pats, log); err != nil {
		return nil, err
	}
	if len(log.Fails) == 0 {
		return res, nil
	}
	obsSet := bitset.New(log.NumPatterns)
	for _, p := range log.FailingPatterns() {
		obsSet.Add(p)
	}
	sigOf := func(s *fsim.Syndrome) bitset.Set {
		sig := bitset.New(s.NumPatterns)
		for _, p := range s.FailingPatterns() {
			sig.Add(p)
		}
		return sig
	}
	// Exact matches first, then nearest by pattern-set symmetric difference.
	type scored struct {
		idx  int
		dist int
	}
	var exact, near []scored
	for i, syn := range d.dict.Syndromes {
		if !syn.Detected() {
			continue
		}
		sig := sigOf(syn)
		dist := sig.SubtractCount(obsSet) + obsSet.SubtractCount(sig)
		if dist == 0 {
			exact = append(exact, scored{idx: i})
		} else {
			near = append(near, scored{idx: i, dist: dist})
		}
	}
	pick := exact
	if len(pick) == 0 {
		sort.Slice(near, func(i, j int) bool {
			if near[i].dist != near[j].dist {
				return near[i].dist < near[j].dist
			}
			return near[i].idx < near[j].idx
		})
		if len(near) > topK {
			near = near[:topK]
		}
		pick = near
	}
	for _, s := range pick {
		res.Multiplet = append(res.Multiplet, Candidate{
			Fault:     d.dict.Faults[s.idx],
			Explained: len(log.Fails) - s.dist,
		})
	}
	return res, nil
}

// syndromeDistance is the Hamming distance between failing-bit sets.
func syndromeDistance(a, b *fsim.Syndrome) int {
	dist := 0
	n := a.NumPatterns
	if b.NumPatterns > n {
		n = b.NumPatterns
	}
	for p := 0; p < n; p++ {
		var fa, fb bitset.Set
		if p < a.NumPatterns {
			fa = a.Fails[p]
		}
		if p < b.NumPatterns {
			fb = b.Fails[p]
		}
		switch {
		case fa == nil && fb == nil:
		case fa == nil:
			dist += fb.Count()
		case fb == nil:
			dist += fa.Count()
		default:
			dist += fa.SubtractCount(fb) + fb.SubtractCount(fa)
		}
	}
	return dist
}

func validate(c *netlist.Circuit, pats []sim.Pattern, log *tester.Datalog) error {
	if log.NumPatterns != len(pats) {
		return fmt.Errorf("baseline: datalog has %d patterns, test set has %d", log.NumPatterns, len(pats))
	}
	if log.NumPOs != len(c.POs) {
		return fmt.Errorf("baseline: datalog has %d POs, circuit has %d", log.NumPOs, len(c.POs))
	}
	return nil
}
