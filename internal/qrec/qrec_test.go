package qrec

import (
	"bytes"
	"strings"
	"testing"
)

func rec(campaign, method string, site float64) Record {
	return Record{
		Campaign: campaign, Circuit: "b0300", Mechanism: "mixed", Defects: 2,
		Method: method, Devices: 6,
		SiteAcc: site, RegionAcc: site, Success: site, Resolution: 4,
		MsPerDiag: 12.3456789, PhaseMS: map[string]float64{"score": 7.7777777},
		ConeHitRate: 0.61803398,
	}
}

// TestDeterministicSerialization: insertion order must not leak into the
// bytes — a parallel campaign's collection order is scheduling-dependent,
// but the committed baseline must diff cleanly.
func TestDeterministicSerialization(t *testing.T) {
	a, b := &Collector{}, &Collector{}
	r1, r2, r3 := rec("T3/x/2", "ours", 1), rec("T3/x/2", "slat", 0.5), rec("T2/x/stuck", "ours", 1)
	for _, r := range []Record{r1, r2, r3} {
		a.Add(r)
	}
	for _, r := range []Record{r3, r2, r1} {
		b.Add(r)
	}
	var ab, bb bytes.Buffer
	if err := a.File().Encode(&ab); err != nil {
		t.Fatal(err)
	}
	if err := b.File().Encode(&bb); err != nil {
		t.Fatal(err)
	}
	if ab.String() != bb.String() {
		t.Fatalf("serialization depends on insertion order:\n%s\nvs\n%s", ab.String(), bb.String())
	}
	// Timing floats are rounded so diffs stay readable.
	if strings.Contains(ab.String(), "12.3456789") || !strings.Contains(ab.String(), "12.346") {
		t.Errorf("ms_per_diag not rounded:\n%s", ab.String())
	}
	if !strings.Contains(ab.String(), `"schema": 1`) {
		t.Errorf("file missing schema stamp:\n%s", ab.String())
	}
}

func TestLoadRoundTripAndRejects(t *testing.T) {
	c := &Collector{}
	c.Add(rec("T3/x/2", "ours", 0.75))
	var buf bytes.Buffer
	if err := c.File().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != Schema || len(f.Records) != 1 || f.Records[0].SiteAcc != 0.75 {
		t.Fatalf("round trip mangled file: %+v", f)
	}
	for _, junk := range []string{"", "{}", `{"schema":1}`, `{"benchmarks":{}}`, "not json"} {
		if _, err := Load(strings.NewReader(junk)); err == nil {
			t.Errorf("Load accepted %q", junk)
		}
	}
}

func TestNilCollector(t *testing.T) {
	var c *Collector
	c.Add(rec("x", "ours", 1)) // must not panic
	if c.Len() != 0 {
		t.Error("nil collector has length")
	}
	if f := c.File(); f.Schema != Schema || len(f.Records) != 0 {
		t.Errorf("nil collector file: %+v", f)
	}
}

func findings(fs []Finding, level string) int {
	n := 0
	for _, f := range fs {
		if f.Level == level {
			n++
		}
	}
	return n
}

// TestCompareGates pins the gate semantics: identical files are clean, an
// accuracy drop past the threshold is an error, resolution/latency growth
// warns, one-sided records never gate.
func TestCompareGates(t *testing.T) {
	base := &File{Schema: Schema, Records: []Record{
		rec("T3/x/2", "ours", 1), rec("T3/x/3", "ours", 0.9),
	}}
	th := DefaultThresholds()

	var out bytes.Buffer
	if fs := Compare(&out, base, base, th); len(fs) != 0 {
		t.Fatalf("self-compare found %v", fs)
	}
	if !strings.Contains(out.String(), "T3/x/2") {
		t.Errorf("delta table missing campaign:\n%s", out.String())
	}

	// Corrupt one accuracy cell past the hard threshold: error.
	cur := &File{Schema: Schema, Records: []Record{
		rec("T3/x/2", "ours", 1), rec("T3/x/3", "ours", 0.9-th.AccDrop-0.01),
	}}
	fs := Compare(&out, base, cur, th)
	// Site, region and success all carry the corrupted value.
	if findings(fs, "error") != 3 || findings(fs, "warning") != 0 {
		t.Fatalf("corrupted accuracy: findings %v", fs)
	}
	if !strings.Contains(fs[0].Message, "T3/x/3") {
		t.Errorf("finding does not name the record: %v", fs[0])
	}

	// A drop inside the threshold passes.
	cur.Records[1].SiteAcc = 0.9 - th.AccDrop + 0.001
	cur.Records[1].RegionAcc = cur.Records[1].SiteAcc
	cur.Records[1].Success = cur.Records[1].SiteAcc
	if fs := Compare(&out, base, cur, th); len(fs) != 0 {
		t.Fatalf("in-threshold drop gated: %v", fs)
	}

	// Resolution and latency growth warn but never error.
	worse := rec("T3/x/2", "ours", 1)
	worse.Resolution *= 2
	worse.MsPerDiag *= 3
	cur = &File{Schema: Schema, Records: []Record{worse, rec("T3/x/3", "ours", 0.9)}}
	fs = Compare(&out, base, cur, th)
	if findings(fs, "error") != 0 || findings(fs, "warning") != 2 {
		t.Fatalf("resolution/latency drift: findings %v", fs)
	}

	// One-sided records report but do not gate.
	cur = &File{Schema: Schema, Records: []Record{rec("T3/x/2", "ours", 1), rec("NEW/y/4", "ours", 1)}}
	out.Reset()
	if fs := Compare(&out, base, cur, th); len(fs) != 0 {
		t.Fatalf("one-sided records gated: %v", fs)
	}
	for _, want := range []string{"gone from current", "new (not in baseline)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("table missing %q:\n%s", want, out.String())
		}
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	base := &File{Schema: Schema, Records: []Record{rec("T3/x/2", "ours", 1)}}
	cur := &File{Schema: Schema + 1, Records: []Record{rec("T3/x/2", "ours", 1)}}
	fs := Compare(&bytes.Buffer{}, base, cur, DefaultThresholds())
	if len(fs) != 1 || fs[0].Level != "error" || !strings.Contains(fs[0].Message, "schema mismatch") {
		t.Fatalf("schema mismatch findings: %v", fs)
	}
}
