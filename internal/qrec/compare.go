package qrec

import (
	"fmt"
	"io"
	"sort"
)

// Thresholds controls when a quality delta is a regression. The quality
// core (accuracies, success) gates hard: those numbers are deterministic
// from the campaign seeds, so any drop past AccDrop is a semantic change.
// Resolution and latency drift warn: resolution trades off against
// accuracy by design, and timing is machine-dependent.
type Thresholds struct {
	// AccDrop is the absolute site/region-accuracy or success-rate drop
	// that is an error (e.g. 0.02 = two accuracy points).
	AccDrop float64
	// ResPct is the mean-resolution (candidate count) increase percentage
	// that warns.
	ResPct float64
	// LatencyPct is the ms/diagnosis increase percentage that warns.
	LatencyPct float64
}

// DefaultThresholds matches the make quality / CI gate configuration.
func DefaultThresholds() Thresholds {
	return Thresholds{AccDrop: 0.02, ResPct: 25, LatencyPct: 75}
}

// Finding is one threshold crossing found by Compare.
type Finding struct {
	// Level is "error" (gates) or "warning" (drift).
	Level string
	// Key identifies the regressed record (campaign|method).
	Key string
	// Message is the human-readable description.
	Message string
}

// Compare prints a per-record delta table to w and returns the threshold
// crossings, errors first. Records present on only one side are reported
// but never fatal, so a baseline refresh and a new campaign can land in
// the same change (the benchdiff contract). Schema mismatch is a single
// error finding — comparing incompatible layouts silently would defeat
// the gate.
func Compare(w io.Writer, base, cur *File, th Thresholds) []Finding {
	if base.Schema != cur.Schema {
		return []Finding{{
			Level: "error",
			Key:   "schema",
			Message: fmt.Sprintf("schema mismatch: baseline v%d vs current v%d — regenerate the baseline",
				base.Schema, cur.Schema),
		}}
	}
	bm, cm := base.Lookup(), cur.Lookup()
	keys := make(map[string]bool, len(bm)+len(cm))
	for k := range bm {
		keys[k] = true
	}
	for k := range cm {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	var errs, warns []Finding
	fmt.Fprintf(w, "%-28s %-10s %18s %18s %16s %14s\n",
		"campaign", "method", "site acc", "region acc", "success", "resolution")
	for _, k := range sorted {
		b, inBase := bm[k]
		c, inCur := cm[k]
		switch {
		case !inCur:
			fmt.Fprintf(w, "%-28s %-10s %66s\n", b.Campaign, b.Method, "— gone from current run")
			continue
		case !inBase:
			fmt.Fprintf(w, "%-28s %-10s %66s\n", c.Campaign, c.Method, "— new (not in baseline)")
			continue
		}
		fmt.Fprintf(w, "%-28s %-10s %8.4f → %7.4f %8.4f → %7.4f %7.3f → %6.3f %6.1f → %5.1f\n",
			c.Campaign, c.Method,
			b.SiteAcc, c.SiteAcc, b.RegionAcc, c.RegionAcc,
			b.Success, c.Success, b.Resolution, c.Resolution)

		check := func(metric string, bv, cv float64) {
			if drop := bv - cv; drop > th.AccDrop {
				errs = append(errs, Finding{
					Level: "error",
					Key:   k,
					Message: fmt.Sprintf("%s %s dropped %.4f → %.4f (−%.4f, threshold %.4f)",
						k, metric, bv, cv, drop, th.AccDrop),
				})
			}
		}
		check("site accuracy", b.SiteAcc, c.SiteAcc)
		check("region accuracy", b.RegionAcc, c.RegionAcc)
		check("success rate", b.Success, c.Success)

		if th.ResPct > 0 && b.Resolution > 0 {
			if pct := (c.Resolution - b.Resolution) / b.Resolution * 100; pct > th.ResPct {
				warns = append(warns, Finding{
					Level: "warning",
					Key:   k,
					Message: fmt.Sprintf("%s resolution grew %.1f%% (%.1f → %.1f candidates, threshold %.0f%%)",
						k, pct, b.Resolution, c.Resolution, th.ResPct),
				})
			}
		}
		if th.LatencyPct > 0 && b.MsPerDiag > 0 {
			if pct := (c.MsPerDiag - b.MsPerDiag) / b.MsPerDiag * 100; pct > th.LatencyPct {
				warns = append(warns, Finding{
					Level: "warning",
					Key:   k,
					Message: fmt.Sprintf("%s slowed %.1f%% (%.1f → %.1f ms/diag, threshold %.0f%%)",
						k, pct, b.MsPerDiag, c.MsPerDiag, th.LatencyPct),
				})
			}
		}
	}
	return append(errs, warns...)
}
