package qrec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// ServiceSchema versions the serving-path record layout, independent of
// the campaign-quality Schema: the two files gate different surfaces
// (diagnostic quality vs service behaviour) and evolve separately.
const ServiceSchema = 1

// ServiceRecord is one diagnosis-service run summary: the admission and
// batching behaviour (requests, sheds, timeouts, panics, batch shape) and
// the end-to-end latency quantiles. mdserve writes one on shutdown;
// mdtrend compare-serve gates a fresh run against a committed baseline
// the way compare gates campaign quality.
type ServiceRecord struct {
	// Label identifies the run scenario (e.g. "smoke"); with nothing else
	// it is the record's identity within a file.
	Label string `json:"label"`
	// Workloads lists the registered workload names, sorted.
	Workloads []string `json:"workloads,omitempty"`
	// Admission and execution outcomes. Requests counts admitted requests;
	// Shed counts 429s; Timeouts counts requests whose deadline passed;
	// Panics counts isolated handler panics (any non-zero value gates).
	Requests int64 `json:"requests"`
	Shed     int64 `json:"shed"`
	Timeouts int64 `json:"timeouts"`
	Panics   int64 `json:"panics"`
	// Batches counts scoring passes; MeanBatch = executed requests per
	// pass, the coalescing ratio the adaptive batcher exists to raise.
	Batches   int64   `json:"batches"`
	ShedRate  float64 `json:"shed_rate"`
	MeanBatch float64 `json:"mean_batch"`
	// Latency quantiles in milliseconds (machine-dependent; warn-only).
	QueueP95MS   float64 `json:"queue_p95_ms"`
	ServiceP50MS float64 `json:"service_p50_ms"`
	ServiceP95MS float64 `json:"service_p95_ms"`
	ServiceP99MS float64 `json:"service_p99_ms"`
	ServiceMaxMS float64 `json:"service_max_ms"`
	// FlaggedRequests samples the X-Request-IDs of notable outcomes
	// ("shed:<id>", "timeout:<id>", "panic:<id>"), newest last — the join
	// key into access logs and captured traces. Informational; never gates.
	FlaggedRequests []string `json:"flagged_requests,omitempty"`
}

// Key is the record's identity within a service file.
func (r ServiceRecord) Key() string { return r.Label }

func (r ServiceRecord) normalize() ServiceRecord {
	r.ShedRate = round3(r.ShedRate)
	r.MeanBatch = round3(r.MeanBatch)
	r.QueueP95MS = round3(r.QueueP95MS)
	r.ServiceP50MS = round3(r.ServiceP50MS)
	r.ServiceP95MS = round3(r.ServiceP95MS)
	r.ServiceP99MS = round3(r.ServiceP99MS)
	r.ServiceMaxMS = round3(r.ServiceMaxMS)
	return r
}

// ServiceFile is the on-disk layout of a service baseline.
type ServiceFile struct {
	Schema  int             `json:"schema"`
	Records []ServiceRecord `json:"records"`
}

// AddService appends a normalized record.
func (f *ServiceFile) AddService(r ServiceRecord) {
	f.Records = append(f.Records, r.normalize())
}

// EncodeService writes the file deterministically (sorted records, stable
// floats), matching File.Encode.
func (f *ServiceFile) Encode(w io.Writer) error {
	sorted := &ServiceFile{Schema: f.Schema, Records: append([]ServiceRecord(nil), f.Records...)}
	sort.SliceStable(sorted.Records, func(i, j int) bool {
		return sorted.Records[i].Key() < sorted.Records[j].Key()
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sorted)
}

// WriteService serializes a service file to path.
func WriteService(path string, f *ServiceFile) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Encode(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// LoadService reads a service-record file and validates its shape.
func LoadService(r io.Reader) (*ServiceFile, error) {
	var f ServiceFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, err
	}
	if f.Schema == 0 || f.Records == nil {
		return nil, fmt.Errorf("qrec: not a service-record file (missing schema/records)")
	}
	return &f, nil
}

// LoadServiceFile reads path ("-" reads stdin).
func LoadServiceFile(path string) (*ServiceFile, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	f, err := LoadService(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// ServiceThresholds controls when a service delta is a regression. Shed
// rate gates hard: under the pinned smoke scenario the admission limits
// are deterministic, so a shed-rate jump means the serving path got
// slower or the limits changed. Latency warns (machine-dependent).
// A panic in the current run is always an error.
type ServiceThresholds struct {
	// ShedInc is the absolute shed-rate increase that is an error.
	ShedInc float64
	// LatencyPct is the p95 service-latency increase percentage that warns.
	LatencyPct float64
}

// DefaultServiceThresholds matches the serve-smoke CI gate.
func DefaultServiceThresholds() ServiceThresholds {
	return ServiceThresholds{ShedInc: 0.05, LatencyPct: 75}
}

// CompareService prints a per-record delta table and returns the
// threshold crossings, errors first (the Compare contract: one-sided
// records are reported but never fatal).
func CompareService(w io.Writer, base, cur *ServiceFile, th ServiceThresholds) []Finding {
	if base.Schema != cur.Schema {
		return []Finding{{
			Level: "error",
			Key:   "schema",
			Message: fmt.Sprintf("service schema mismatch: baseline v%d vs current v%d — regenerate the baseline",
				base.Schema, cur.Schema),
		}}
	}
	bm := make(map[string]ServiceRecord, len(base.Records))
	for _, r := range base.Records {
		bm[r.Key()] = r
	}
	cm := make(map[string]ServiceRecord, len(cur.Records))
	for _, r := range cur.Records {
		cm[r.Key()] = r
	}
	keys := make([]string, 0, len(bm)+len(cm))
	seen := make(map[string]bool)
	for _, r := range append(append([]ServiceRecord(nil), base.Records...), cur.Records...) {
		if !seen[r.Key()] {
			seen[r.Key()] = true
			keys = append(keys, r.Key())
		}
	}
	sort.Strings(keys)

	var errs, warns []Finding
	fmt.Fprintf(w, "%-16s %14s %16s %16s %18s\n",
		"label", "requests", "shed rate", "mean batch", "service p95 ms")
	for _, k := range keys {
		b, inBase := bm[k]
		c, inCur := cm[k]
		switch {
		case !inCur:
			fmt.Fprintf(w, "%-16s %66s\n", b.Label, "— gone from current run")
			continue
		case !inBase:
			fmt.Fprintf(w, "%-16s %66s\n", c.Label, "— new (not in baseline)")
			continue
		}
		fmt.Fprintf(w, "%-16s %5d → %5d %7.3f → %6.3f %7.2f → %6.2f %8.2f → %7.2f\n",
			c.Label, b.Requests, c.Requests, b.ShedRate, c.ShedRate,
			b.MeanBatch, c.MeanBatch, b.ServiceP95MS, c.ServiceP95MS)

		if c.Panics > 0 {
			errs = append(errs, Finding{
				Level:   "error",
				Key:     k,
				Message: fmt.Sprintf("%s: %d handler panic(s) in current run", k, c.Panics),
			})
		}
		if inc := c.ShedRate - b.ShedRate; inc > th.ShedInc {
			errs = append(errs, Finding{
				Level: "error",
				Key:   k,
				Message: fmt.Sprintf("%s shed rate rose %.3f → %.3f (+%.3f, threshold %.3f)",
					k, b.ShedRate, c.ShedRate, inc, th.ShedInc),
			})
		}
		if th.LatencyPct > 0 && b.ServiceP95MS > 0 {
			if pct := (c.ServiceP95MS - b.ServiceP95MS) / b.ServiceP95MS * 100; pct > th.LatencyPct {
				warns = append(warns, Finding{
					Level: "warning",
					Key:   k,
					Message: fmt.Sprintf("%s service p95 slowed %.1f%% (%.2f → %.2f ms, threshold %.0f%%)",
						k, pct, b.ServiceP95MS, c.ServiceP95MS, th.LatencyPct),
				})
			}
		}
	}
	return append(errs, warns...)
}
