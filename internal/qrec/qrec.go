// Package qrec defines machine-readable diagnostic-quality records: one
// record per (campaign, method) of an experiment run, carrying the
// numbers the paper's claims rest on — site/region accuracy, success
// rate, resolution — plus the runtime context (ms/diagnosis, per-phase
// CPU, cone-cache hit rate).
//
// The experiment suite (internal/exp) collects records during a run;
// mdexp -quality-out serializes them deterministically (stable sort,
// stable float rendering) so a committed baseline file diffs cleanly; and
// cmd/mdtrend compares a fresh run against that baseline, turning silent
// quality regressions into failing CI the same way cmd/benchdiff guards
// ns/op. Quality numbers are deterministic from the campaign seeds, so an
// accuracy cell that moves is a semantic change, not noise; only the
// timing fields vary between machines, and comparisons treat them as
// warn-only.
package qrec

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
)

// Schema is the quality-record file schema version, bumped on any
// incompatible Record change so mdtrend refuses to compare across
// incompatible files instead of mis-reading them.
const Schema = 1

// Record is one (campaign, method) quality summary.
type Record struct {
	// Campaign is the suite's campaign label (e.g. "T3/b0300/2"); with
	// Method it forms the record's identity.
	Campaign string `json:"campaign"`
	// Circuit is the workload name, Mechanism the injected defect
	// population ("stuck", "open", "bridge" or "mixed"), Defects the
	// multiplicity.
	Circuit   string `json:"circuit"`
	Mechanism string `json:"mechanism,omitempty"`
	Defects   int    `json:"defects"`
	// Method is the diagnosis engine ("ours", "slat", "intersect", …).
	Method string `json:"method"`
	// Devices is how many activated devices the campaign diagnosed.
	Devices int `json:"devices"`
	// The quality core: deterministic given the campaign seeds.
	SiteAcc    float64 `json:"site_acc"`
	RegionAcc  float64 `json:"region_acc"`
	Success    float64 `json:"success"`
	Resolution float64 `json:"resolution"`
	// Runtime context: machine-dependent, compared warn-only.
	MsPerDiag float64 `json:"ms_per_diag"`
	// PhaseMS is the core engine's per-diagnosis CPU split in
	// milliseconds, keyed by phase name (ours only).
	PhaseMS map[string]float64 `json:"phase_ms,omitempty"`
	// ConeHitRate is the campaign cone cache's hit fraction (ours only;
	// informational — scheduling-dependent under parallelism).
	ConeHitRate float64 `json:"cone_hit_rate,omitempty"`
}

// Key is the record's identity within a file.
func (r Record) Key() string { return r.Campaign + "|" + r.Method }

// round3 keeps serialized timing floats short and diff-friendly.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// normalize rounds the machine-dependent fields; the quality core is kept
// bit-exact (those values are exact aggregates of the deterministic run).
func (r Record) normalize() Record {
	r.MsPerDiag = round3(r.MsPerDiag)
	r.ConeHitRate = round3(r.ConeHitRate)
	if r.PhaseMS != nil {
		ph := make(map[string]float64, len(r.PhaseMS))
		for k, v := range r.PhaseMS {
			ph[k] = round3(v)
		}
		r.PhaseMS = ph
	}
	return r
}

// File is the on-disk layout of a quality baseline.
type File struct {
	Schema  int      `json:"schema"`
	Records []Record `json:"records"`
}

// Lookup indexes the records by Key; duplicate keys keep the last record.
func (f *File) Lookup() map[string]Record {
	out := make(map[string]Record, len(f.Records))
	for _, r := range f.Records {
		out[r.Key()] = r
	}
	return out
}

// Encode writes the file deterministically: records sorted by key,
// two-space indentation, one trailing newline (encoding/json renders
// map keys sorted, so PhaseMS is stable too).
func (f *File) Encode(w io.Writer) error {
	sorted := &File{Schema: f.Schema, Records: append([]Record(nil), f.Records...)}
	sort.SliceStable(sorted.Records, func(i, j int) bool {
		return sorted.Records[i].Key() < sorted.Records[j].Key()
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sorted)
}

// Write serializes the file to path.
func Write(path string, f *File) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Encode(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Load reads a quality file and validates its shape.
func Load(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, err
	}
	if f.Schema == 0 || f.Records == nil {
		return nil, fmt.Errorf("qrec: not a quality-record file (missing schema/records)")
	}
	return &f, nil
}

// LoadFile reads path ("-" reads stdin, matching benchdiff).
func LoadFile(path string) (*File, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	f, err := Load(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Collector accumulates records from concurrent campaign workers. A nil
// *Collector ignores Add, so the experiment suite threads one pointer
// through unconditionally (the obs idiom).
type Collector struct {
	mu   sync.Mutex
	recs []Record
}

// Add appends one record (normalizing its timing floats).
func (c *Collector) Add(r Record) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.recs = append(c.recs, r.normalize())
	c.mu.Unlock()
}

// Len reports how many records were collected (0 on nil).
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// File snapshots the collected records as a schema-stamped file.
func (c *Collector) File() *File {
	f := &File{Schema: Schema}
	if c == nil {
		return f
	}
	c.mu.Lock()
	f.Records = append([]Record(nil), c.recs...)
	c.mu.Unlock()
	return f
}
