package qrec

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleService(label string) ServiceRecord {
	return ServiceRecord{
		Label:        label,
		Workloads:    []string{"b0300", "c17"},
		Requests:     120,
		Batches:      40,
		MeanBatch:    3.0,
		ShedRate:     0.01,
		Shed:         1,
		QueueP95MS:   0.42,
		ServiceP50MS: 1.5,
		ServiceP95MS: 4.2,
		ServiceP99MS: 6.8,
		ServiceMaxMS: 9.1,
	}
}

func TestServiceRoundTrip(t *testing.T) {
	f := &ServiceFile{Schema: ServiceSchema}
	f.AddService(sampleService("smoke"))
	f.AddService(sampleService("burst"))
	path := filepath.Join(t.TempDir(), "serve.json")
	if err := WriteService(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := LoadServiceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ServiceSchema || len(got.Records) != 2 {
		t.Fatalf("loaded %+v", got)
	}
	// Records survive normalize+encode+decode intact.
	want := sampleService("smoke").normalize()
	var loaded ServiceRecord
	for _, r := range got.Records {
		if r.Label == "smoke" {
			loaded = r
		}
	}
	if !reflect.DeepEqual(loaded, want) {
		t.Errorf("round trip changed the record:\ngot:  %+v\nwant: %+v", loaded, want)
	}
}

func TestServiceEncodeDeterministic(t *testing.T) {
	a := &ServiceFile{Schema: ServiceSchema}
	a.AddService(sampleService("zeta"))
	a.AddService(sampleService("alpha"))
	b := &ServiceFile{Schema: ServiceSchema}
	b.AddService(sampleService("alpha"))
	b.AddService(sampleService("zeta"))
	var ba, bb bytes.Buffer
	if err := a.Encode(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Encode(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Error("encoding depends on insertion order")
	}
}

func TestLoadServiceRejectsWrongShape(t *testing.T) {
	if _, err := LoadService(strings.NewReader(`{"some":"json"}`)); err == nil {
		t.Error("accepted a non-service file")
	}
	if _, err := LoadService(strings.NewReader(`not json`)); err == nil {
		t.Error("accepted garbage")
	}
}

func TestCompareServiceGates(t *testing.T) {
	base := &ServiceFile{Schema: ServiceSchema}
	base.AddService(sampleService("smoke"))

	t.Run("clean", func(t *testing.T) {
		cur := &ServiceFile{Schema: ServiceSchema}
		cur.AddService(sampleService("smoke"))
		if fs := CompareService(os.Stderr, base, cur, DefaultServiceThresholds()); len(fs) != 0 {
			t.Errorf("identical runs produced findings: %+v", fs)
		}
	})
	t.Run("shed-rate-error", func(t *testing.T) {
		r := sampleService("smoke")
		r.ShedRate = 0.2
		cur := &ServiceFile{Schema: ServiceSchema}
		cur.AddService(r)
		fs := CompareService(os.Stderr, base, cur, DefaultServiceThresholds())
		if findings(fs, "error") != 1 {
			t.Errorf("shed-rate jump not an error: %+v", fs)
		}
	})
	t.Run("panic-error", func(t *testing.T) {
		r := sampleService("smoke")
		r.Panics = 1
		cur := &ServiceFile{Schema: ServiceSchema}
		cur.AddService(r)
		fs := CompareService(os.Stderr, base, cur, DefaultServiceThresholds())
		if findings(fs, "error") != 1 {
			t.Errorf("panic not an error: %+v", fs)
		}
	})
	t.Run("latency-warning", func(t *testing.T) {
		r := sampleService("smoke")
		r.ServiceP95MS = 20 // ~376% over 4.2ms baseline
		cur := &ServiceFile{Schema: ServiceSchema}
		cur.AddService(r)
		fs := CompareService(os.Stderr, base, cur, DefaultServiceThresholds())
		if findings(fs, "error") != 0 || findings(fs, "warning") != 1 {
			t.Errorf("latency slowdown should warn only: %+v", fs)
		}
	})
	t.Run("one-sided-never-fatal", func(t *testing.T) {
		cur := &ServiceFile{Schema: ServiceSchema}
		cur.AddService(sampleService("other"))
		if fs := CompareService(os.Stderr, base, cur, DefaultServiceThresholds()); len(fs) != 0 {
			t.Errorf("one-sided records should report, not gate: %+v", fs)
		}
	})
	t.Run("schema-mismatch", func(t *testing.T) {
		cur := &ServiceFile{Schema: ServiceSchema + 1}
		cur.AddService(sampleService("smoke"))
		fs := CompareService(os.Stderr, base, cur, DefaultServiceThresholds())
		if len(fs) != 1 || fs[0].Level != "error" {
			t.Errorf("schema mismatch: %+v", fs)
		}
	})
}
