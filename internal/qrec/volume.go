package qrec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// volumeSchemaPrefix matches volume.SummarySchema versions ("mdvol/
// summary/v1"). qrec reads the summary wire format without importing
// internal/volume — exp depends on qrec, and volume's tests depend on
// exp, so a qrec→volume edge would cycle.
const volumeSchemaPrefix = "mdvol/summary/"

// VolumeSummary is the subset of a volume fleet summary (mdvol
// -summary-out, GET /v1/volume/summary) the trend gate reads; unknown
// fields (sites, trend series) pass through undecoded.
type VolumeSummary struct {
	Schema          string             `json:"schema"`
	Workload        string             `json:"workload"`
	Devices         int64              `json:"devices"`
	Failing         int64              `json:"failing"`
	UniqueSyndromes int64              `json:"unique_syndromes"`
	DedupeRatio     float64            `json:"dedupe_ratio"`
	Classes         []VolumeClassCount `json:"classes"`
}

// VolumeClassCount is one defect class's device count.
type VolumeClassCount struct {
	Class   string `json:"class"`
	Devices int64  `json:"devices"`
}

// LoadVolumeSummary reads a volume fleet-summary JSON and validates its
// schema; "-" reads stdin.
func LoadVolumeSummary(path string) (*VolumeSummary, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var s VolumeSummary
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(s.Schema, volumeSchemaPrefix) {
		return nil, fmt.Errorf("%s: schema %q is not a volume summary (want %s*)", path, s.Schema, volumeSchemaPrefix)
	}
	return &s, nil
}

// VolumeThresholds controls when a volume-summary delta is a regression.
// On the pinned synthetic stream (mdgen -datalogs, fixed seed) the whole
// summary is deterministic, so the gates are tight: the fingerprint and
// the classifier either changed or they didn't.
type VolumeThresholds struct {
	// DedupeDrop is the absolute dedupe-ratio drop that is an error: a
	// fingerprint that stops matching syndromes it used to match turns
	// repeats into unique devices and the ratio falls.
	DedupeDrop float64
	// UniquePct is the unique-syndrome growth percentage that is an
	// error (the same failure mode seen from the other side).
	UniquePct float64
}

// DefaultVolumeThresholds matches the vol-smoke CI gate.
func DefaultVolumeThresholds() VolumeThresholds {
	return VolumeThresholds{DedupeDrop: 0.02, UniquePct: 10}
}

// CompareVolume prints the summary delta and returns the threshold
// crossings, errors first. Mismatched schemas, workloads or device
// counts are errors before anything else: ratios from different streams
// do not compare.
func CompareVolume(w io.Writer, base, cur *VolumeSummary, th VolumeThresholds) []Finding {
	if base.Schema != cur.Schema {
		return []Finding{{
			Level:   "error",
			Key:     "schema",
			Message: fmt.Sprintf("volume schema mismatch: baseline %q vs current %q — regenerate the baseline", base.Schema, cur.Schema),
		}}
	}
	if base.Workload != cur.Workload {
		return []Finding{{
			Level:   "error",
			Key:     "workload",
			Message: fmt.Sprintf("volume summaries compare different workloads: %q vs %q", base.Workload, cur.Workload),
		}}
	}
	fmt.Fprintf(w, "%-16s %14s %14s\n", "metric", "base", "cur")
	fmt.Fprintf(w, "%-16s %14d %14d\n", "devices", base.Devices, cur.Devices)
	fmt.Fprintf(w, "%-16s %14d %14d\n", "failing", base.Failing, cur.Failing)
	fmt.Fprintf(w, "%-16s %14d %14d\n", "unique", base.UniqueSyndromes, cur.UniqueSyndromes)
	fmt.Fprintf(w, "%-16s %14.3f %14.3f\n", "dedupe ratio", base.DedupeRatio, cur.DedupeRatio)

	key := cur.Workload
	if base.Devices != cur.Devices {
		return []Finding{{
			Level: "error",
			Key:   key,
			Message: fmt.Sprintf("%s: device count changed %d → %d — different streams, regenerate the baseline",
				key, base.Devices, cur.Devices),
		}}
	}
	var errs []Finding
	if drop := base.DedupeRatio - cur.DedupeRatio; drop > th.DedupeDrop {
		errs = append(errs, Finding{
			Level: "error",
			Key:   key,
			Message: fmt.Sprintf("%s dedupe ratio dropped %.3f → %.3f (-%.3f, threshold %.3f): syndrome fingerprint no longer matches repeats",
				key, base.DedupeRatio, cur.DedupeRatio, drop, th.DedupeDrop),
		})
	}
	if th.UniquePct > 0 && base.UniqueSyndromes > 0 {
		if pct := float64(cur.UniqueSyndromes-base.UniqueSyndromes) / float64(base.UniqueSyndromes) * 100; pct > th.UniquePct {
			errs = append(errs, Finding{
				Level: "error",
				Key:   key,
				Message: fmt.Sprintf("%s unique syndromes grew %.1f%% (%d → %d, threshold %.0f%%): fingerprint unstable",
					key, pct, base.UniqueSyndromes, cur.UniqueSyndromes, th.UniquePct),
			})
		}
	}
	if !volumeClassesEqual(base.Classes, cur.Classes) {
		errs = append(errs, Finding{
			Level: "error",
			Key:   key,
			Message: fmt.Sprintf("%s defect-class distribution changed: %s → %s",
				key, formatVolumeClasses(base.Classes), formatVolumeClasses(cur.Classes)),
		})
	}
	return errs
}

func volumeClassesEqual(a, b []VolumeClassCount) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func formatVolumeClasses(cs []VolumeClassCount) string {
	if len(cs) == 0 {
		return "none"
	}
	parts := make([]string, 0, len(cs))
	for _, c := range cs {
		parts = append(parts, fmt.Sprintf("%s:%d", c.Class, c.Devices))
	}
	return strings.Join(parts, " ")
}
