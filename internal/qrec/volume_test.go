package qrec

import (
	"strings"
	"testing"
)

func volSummary() *VolumeSummary {
	return &VolumeSummary{
		Schema:          "mdvol/summary/v1",
		Workload:        "c17",
		Devices:         200,
		Failing:         198,
		UniqueSyndromes: 20,
		DedupeRatio:     0.9,
		Classes: []VolumeClassCount{
			{Class: "sa0", Devices: 150},
			{Class: "bridge", Devices: 50},
		},
	}
}

func TestCompareVolumeClean(t *testing.T) {
	var out strings.Builder
	findings := CompareVolume(&out, volSummary(), volSummary(), DefaultVolumeThresholds())
	if len(findings) != 0 {
		t.Fatalf("identical summaries produced findings: %+v", findings)
	}
}

func TestCompareVolumeDedupeDrop(t *testing.T) {
	cur := volSummary()
	cur.DedupeRatio = 0.8
	var out strings.Builder
	findings := CompareVolume(&out, volSummary(), cur, DefaultVolumeThresholds())
	if len(findings) == 0 || findings[0].Level != "error" || !strings.Contains(findings[0].Message, "dedupe ratio dropped") {
		t.Fatalf("dedupe drop not gated: %+v", findings)
	}
}

func TestCompareVolumeUniqueGrowth(t *testing.T) {
	cur := volSummary()
	cur.UniqueSyndromes = 25 // +25% > 10% threshold
	var out strings.Builder
	findings := CompareVolume(&out, volSummary(), cur, DefaultVolumeThresholds())
	found := false
	for _, f := range findings {
		if strings.Contains(f.Message, "unique syndromes grew") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unique-syndrome growth not gated: %+v", findings)
	}
}

func TestCompareVolumeClassDistribution(t *testing.T) {
	cur := volSummary()
	cur.Classes[1] = VolumeClassCount{Class: "sa1", Devices: 50}
	var out strings.Builder
	findings := CompareVolume(&out, volSummary(), cur, DefaultVolumeThresholds())
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "defect-class distribution changed") {
		t.Fatalf("class change not gated: %+v", findings)
	}
}

func TestCompareVolumeDeviceMismatchShortCircuits(t *testing.T) {
	cur := volSummary()
	cur.Devices = 100
	cur.DedupeRatio = 0 // would also trip, but the count error wins alone
	var out strings.Builder
	findings := CompareVolume(&out, volSummary(), cur, DefaultVolumeThresholds())
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "device count changed") {
		t.Fatalf("device mismatch not short-circuited: %+v", findings)
	}
}

func TestCompareVolumeSchemaMismatch(t *testing.T) {
	cur := volSummary()
	cur.Schema = "mdvol/summary/v2"
	var out strings.Builder
	findings := CompareVolume(&out, volSummary(), cur, DefaultVolumeThresholds())
	if len(findings) != 1 || findings[0].Key != "schema" {
		t.Fatalf("schema mismatch not gated: %+v", findings)
	}
}
