package place

import (
	"strings"
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/netlist"
)

func TestNewPlacementDeterministic(t *testing.T) {
	c, err := circuits.Generate(circuits.GenConfig{Seed: 4, NumPIs: 12, NumGates: 200, NumPOs: 8})
	if err != nil {
		t.Fatal(err)
	}
	a := New(c, 7)
	b := New(c, 7)
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			t.Fatal("placement not deterministic")
		}
	}
	d := New(c, 8)
	same := true
	for i := range a.Coords {
		if a.Coords[i] != d.Coords[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestPlacementColumnsFollowLevels(t *testing.T) {
	c := circuits.C17()
	p := New(c, 1)
	for i := range c.Gates {
		want := float64(c.Gates[i].Level)
		got := p.Coords[i].X
		if got < want-0.5 || got > want+0.5 {
			t.Fatalf("net %s level %d placed at X=%.2f", c.Gates[i].Name, c.Gates[i].Level, got)
		}
	}
}

func TestDistanceSymmetry(t *testing.T) {
	c := circuits.C17()
	p := New(c, 2)
	a, b := netlist.NetID(0), netlist.NetID(5)
	if p.Distance(a, b) != p.Distance(b, a) {
		t.Fatal("distance asymmetric")
	}
	if p.Distance(a, a) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestNeighbors(t *testing.T) {
	c, err := circuits.RippleAdder(8)
	if err != nil {
		t.Fatal(err)
	}
	p := New(c, 3)
	n := c.NetByName("axb4")
	nbs := p.Neighbors(n, 5)
	if len(nbs) != 5 {
		t.Fatalf("neighbors = %d", len(nbs))
	}
	inCone := c.FaninCone(n)
	outCone := c.FanoutCone(n)
	prev := -1.0
	for _, m := range nbs {
		if m == n || inCone[m] || outCone[m] {
			t.Fatalf("neighbor %s structurally dependent", c.NameOf(m))
		}
		d := p.Distance(n, m)
		if d < prev {
			t.Fatal("neighbors not sorted by distance")
		}
		prev = d
	}
}

func TestEnumerateBridges(t *testing.T) {
	c, err := circuits.RippleAdder(6)
	if err != nil {
		t.Fatal(err)
	}
	p := New(c, 5)
	brs := p.EnumerateBridges(1.5, 0)
	if len(brs) == 0 {
		t.Fatal("no bridges under distance 1.5")
	}
	seen := map[[2]netlist.NetID]bool{}
	for _, b := range brs {
		if p.Distance(b.Victim, b.Aggressor) > 1.5 {
			t.Fatalf("bridge %v exceeds distance bound", b)
		}
		if c.FaninCone(b.Victim)[b.Aggressor] || c.FanoutCone(b.Victim)[b.Aggressor] {
			t.Fatalf("bridge %v couples dependent nets", b)
		}
		key := [2]netlist.NetID{b.Victim, b.Aggressor}
		if seen[key] {
			t.Fatalf("duplicate bridge %v", b)
		}
		seen[key] = true
	}
	// Wider radius yields at least as many pairs.
	wide := p.EnumerateBridges(3.0, 0)
	if len(wide) < len(brs) {
		t.Fatal("wider radius produced fewer bridges")
	}
	// maxPairs respected.
	capped := p.EnumerateBridges(3.0, 4)
	if len(capped) != 4 {
		t.Fatalf("maxPairs ignored: %d", len(capped))
	}
}

func TestWirelengthsSane(t *testing.T) {
	c, err := circuits.Generate(circuits.GenConfig{Seed: 11, NumPIs: 16, NumGates: 400, NumPOs: 12})
	if err != nil {
		t.Fatal(err)
	}
	p := New(c, 13)
	st := p.Wirelengths()
	if st.Nets == 0 || st.MeanLength <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Placement realism: most nets should be short (locality), i.e. long
	// nets a small minority.
	if st.LongFraction > 0.5 {
		t.Errorf("long-net fraction %.2f implausibly high", st.LongFraction)
	}
	if s := p.String(); !strings.Contains(s, "placement of") {
		t.Errorf("String = %q", s)
	}
}
