// Package place provides a pseudo-placement layout proxy: it assigns every
// net a 2-D coordinate (column = topological level, row = a seeded
// arrangement within the level, mimicking row-based standard-cell
// placement) and derives physical-adjacency relations from Euclidean
// distance. The defect package uses it to sample bridges between nets that
// are *physically* close under the proxy rather than merely level-close —
// the closest stdlib-only stand-in for real layout data (see DESIGN.md §5).
package place

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"multidiag/internal/fault"
	"multidiag/internal/netlist"
)

// Point is a placement coordinate in abstract grid units.
type Point struct {
	X, Y float64
}

// Placement maps every net of a circuit to a coordinate.
type Placement struct {
	c      *netlist.Circuit
	Coords []Point // indexed by NetID
}

// New builds a pseudo-placement: nets are grouped into columns by
// topological level (wire length follows logic depth, as in a placed
// row-based layout) and stacked vertically within each column in a seeded
// random order (real placers interleave unrelated logic within a row —
// which is precisely what makes bridges couple unrelated signals).
func New(c *netlist.Circuit, seed int64) *Placement {
	r := rand.New(rand.NewSource(seed))
	p := &Placement{c: c, Coords: make([]Point, c.NumGates())}
	byLevel := make([][]netlist.NetID, c.MaxLevel()+1)
	for i := range c.Gates {
		l := c.Gates[i].Level
		byLevel[l] = append(byLevel[l], netlist.NetID(i))
	}
	for lvl, nets := range byLevel {
		r.Shuffle(len(nets), func(i, j int) { nets[i], nets[j] = nets[j], nets[i] })
		for row, n := range nets {
			// Small jitter models irregular cell heights/widths.
			p.Coords[n] = Point{
				X: float64(lvl) + r.Float64()*0.4 - 0.2,
				Y: float64(row) + r.Float64()*0.4 - 0.2,
			}
		}
	}
	return p
}

// Distance returns the Euclidean distance between two nets' coordinates.
func (p *Placement) Distance(a, b netlist.NetID) float64 {
	dx := p.Coords[a].X - p.Coords[b].X
	dy := p.Coords[a].Y - p.Coords[b].Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Neighbors returns the k physically nearest structurally-independent nets
// to n (excluding nets in n's fan-in/fan-out cones, which cannot be bridge
// partners in the combinational model).
func (p *Placement) Neighbors(n netlist.NetID, k int) []netlist.NetID {
	inCone := p.c.FaninCone(n)
	outCone := p.c.FanoutCone(n)
	type cand struct {
		id netlist.NetID
		d  float64
	}
	var all []cand
	for i := range p.c.Gates {
		m := netlist.NetID(i)
		if m == n || inCone[m] || outCone[m] {
			continue
		}
		all = append(all, cand{id: m, d: p.Distance(n, m)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]netlist.NetID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

// EnumerateBridges lists bridge candidates between nets whose placement
// distance is below maxDist, deterministically ordered by (victim,
// aggressor). maxPairs bounds the result (0 = unbounded).
func (p *Placement) EnumerateBridges(maxDist float64, maxPairs int) []fault.Bridge {
	var out []fault.Bridge
	n := p.c.NumGates()
	// Sweep by X to avoid the full quadratic scan: sort ids by X, compare
	// within the window.
	ids := make([]netlist.NetID, n)
	for i := range ids {
		ids[i] = netlist.NetID(i)
	}
	sort.Slice(ids, func(i, j int) bool { return p.Coords[ids[i]].X < p.Coords[ids[j]].X })
	for i := 0; i < n; i++ {
		a := ids[i]
		coneA := p.c.FaninCone(a)
		outA := p.c.FanoutCone(a)
		for j := i + 1; j < n; j++ {
			b := ids[j]
			if p.Coords[b].X-p.Coords[a].X > maxDist {
				break
			}
			if p.Distance(a, b) > maxDist {
				continue
			}
			if coneA[b] || outA[b] {
				continue
			}
			v, g := a, b
			if g < v {
				v, g = g, v
			}
			out = append(out, fault.Bridge{Victim: v, Aggressor: g, Kind: fault.DominantBridge})
			if maxPairs > 0 && len(out) >= maxPairs {
				sortBridges(out)
				return out
			}
		}
	}
	sortBridges(out)
	return out
}

func sortBridges(bs []fault.Bridge) {
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].Victim != bs[j].Victim {
			return bs[i].Victim < bs[j].Victim
		}
		return bs[i].Aggressor < bs[j].Aggressor
	})
}

// WirelengthStats summarizes the proxy layout (reported by tooling to sanity
// check that the placement behaves like one: short nets dominate).
type WirelengthStats struct {
	Nets         int
	MeanLength   float64
	MaxLength    float64
	LongFraction float64 // fraction of nets longer than 3 columns
}

// Wirelengths computes per-net driver→reader half-perimeter lengths.
func (p *Placement) Wirelengths() WirelengthStats {
	var st WirelengthStats
	for i := range p.c.Gates {
		g := &p.c.Gates[i]
		if len(g.Fanout) == 0 {
			continue
		}
		minX, maxX := p.Coords[g.ID].X, p.Coords[g.ID].X
		minY, maxY := p.Coords[g.ID].Y, p.Coords[g.ID].Y
		for _, rd := range g.Fanout {
			pt := p.Coords[rd]
			minX = math.Min(minX, pt.X)
			maxX = math.Max(maxX, pt.X)
			minY = math.Min(minY, pt.Y)
			maxY = math.Max(maxY, pt.Y)
		}
		l := (maxX - minX) + (maxY - minY)
		st.Nets++
		st.MeanLength += l
		st.MaxLength = math.Max(st.MaxLength, l)
		if maxX-minX > 3 {
			st.LongFraction++
		}
	}
	if st.Nets > 0 {
		st.MeanLength /= float64(st.Nets)
		st.LongFraction /= float64(st.Nets)
	}
	return st
}

// String renders a short placement summary.
func (p *Placement) String() string {
	st := p.Wirelengths()
	return fmt.Sprintf("placement of %s: %d nets, mean HPWL %.2f, max %.2f",
		p.c.Name, st.Nets, st.MeanLength, st.MaxLength)
}
