// mdtrans drives the delay-defect flow: it generates two-pattern
// (launch/capture) transition tests, optionally injects slow-net defects
// and produces a capture datalog, and diagnoses slow nets from a datalog.
//
// Usage:
//
//	mdtrans gen    -c circuit.bench -o pairs.txt [-seed 7]
//	mdtrans inject -c circuit.bench -p pairs.txt -nets n5,n9 -o dev.log
//	mdtrans diag   -c circuit.bench -p pairs.txt -d dev.log
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multidiag/internal/cio"
	"multidiag/internal/netlist"
	"multidiag/internal/tester"
	"multidiag/internal/transition"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet("mdtrans "+cmd, flag.ExitOnError)
	var (
		circ  = fs.String("c", "", "circuit file (required)")
		pfile = fs.String("p", "", "pair file")
		dfile = fs.String("d", "", "datalog file")
		nets  = fs.String("nets", "", "comma-separated slow net names (inject)")
		out   = fs.String("o", "", "output file (default stdout)")
		seed  = fs.Int64("seed", 1, "generation seed")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *circ == "" {
		fatal(fmt.Errorf("-c is required"))
	}
	c, _ := cio.MustLoad("mdtrans", *circ, false)

	outW := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		outW = f
	}

	switch cmd {
	case "gen":
		res, err := transition.Generate(c, transition.GenerateConfig{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		if err := transition.WritePairs(outW, res.Pairs); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mdtrans: %d pairs, %.2f%% transition coverage\n",
			len(res.Pairs), 100*res.Coverage())
	case "inject":
		pairs := loadPairs(*pfile)
		if *nets == "" {
			fatal(fmt.Errorf("-nets is required for inject"))
		}
		var slow []transition.SlowNet
		for _, name := range strings.Split(*nets, ",") {
			id := c.NetByName(strings.TrimSpace(name))
			if id == netlist.InvalidNet {
				fatal(fmt.Errorf("unknown net %q", name))
			}
			slow = append(slow, transition.SlowNet{Net: id})
		}
		log, err := transition.ApplyTest(c, slow, pairs)
		if err != nil {
			fatal(err)
		}
		if err := tester.WriteDatalog(outW, log); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mdtrans: %d failing pairs\n", len(log.FailingPatterns()))
	case "diag":
		pairs := loadPairs(*pfile)
		if *dfile == "" {
			fatal(fmt.Errorf("-d is required for diag"))
		}
		df, err := os.Open(*dfile)
		if err != nil {
			fatal(err)
		}
		log, err := tester.ReadDatalog(df)
		df.Close()
		if err != nil {
			fatal(err)
		}
		res, err := transition.Diagnose(c, pairs, log, 0, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(outW, "evidence: %d failing bits; multiplet %d; elapsed %s\n",
			res.Evidence, len(res.Multiplet), res.Elapsed)
		for i, cd := range res.Multiplet {
			fmt.Fprintf(outW, "#%d %s covers %d bits, %d mispredictions\n",
				i+1, cd.Fault.Name(c), cd.TFSF, cd.TPSF)
			for _, e := range cd.Equivalent {
				fmt.Fprintf(outW, "   ≡ %s\n", e.Name(c))
			}
		}
		if res.Unexplained > 0 {
			fmt.Fprintf(outW, "WARNING: %d bits unexplained\n", res.Unexplained)
		}
	default:
		usage()
	}
}

func loadPairs(path string) []transition.Pair {
	if path == "" {
		fatal(fmt.Errorf("-p is required"))
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	pairs, err := transition.ReadPairs(f)
	if err != nil {
		fatal(err)
	}
	if len(pairs) == 0 {
		fatal(fmt.Errorf("no pairs in %s", path))
	}
	return pairs
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mdtrans gen|inject|diag [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdtrans:", err)
	os.Exit(1)
}
