// mdexp regenerates every table and figure of the evaluation (DESIGN.md §4,
// recorded in EXPERIMENTS.md).
//
// Usage:
//
//	mdexp              # full suite (minutes)
//	mdexp -quick       # reduced sizes/seeds (tens of seconds)
//	mdexp -only T3     # one experiment
//	mdexp -j 8         # total worker budget (campaign × fault workers)
//
// Observability: -trace-out writes one JSONL "run" record per table/figure
// and per campaign (plus the engines' span stream); -cpuprofile,
// -memprofile and -debug-addr enable the pprof hooks; -quality-out writes
// the per-campaign quality records mdtrend gates on; -stall-after arms a
// watchdog that dumps goroutine stacks when no device completes in time
// (DESIGN.md §Observability).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"multidiag/internal/exp"
	"multidiag/internal/explain"
	"multidiag/internal/obs"
	"multidiag/internal/prof"
	"multidiag/internal/qrec"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "reduced workloads for a fast run")
		seeds      = flag.Int("seeds", 0, "devices per configuration (0 = default)")
		only       = flag.String("only", "", "run a single experiment: T1..T9, F1..F4")
		jobs       = flag.Int("j", 0, "total worker budget shared by campaign and fault-parallel pools (0 = GOMAXPROCS)")
		progress   = flag.Int("progress", 0, "print a live progress heartbeat to stderr every `N` seconds (0 = off)")
		qualityOut = flag.String("quality-out", "", "write per-campaign quality records (qrec JSON) to `file` (\"-\" = stdout)")
		stallAfter = flag.Duration("stall-after", 0, "dump goroutine stacks to stderr when no device completes within this duration (0 = off)")
	)
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	var profFlags prof.Flags
	profFlags.Register(flag.CommandLine)
	flag.Parse()
	if err := run(obsFlags, profFlags, *quick, *seeds, *only, *jobs, *progress, *qualityOut, *stallAfter); err != nil {
		fatal(err)
	}
}

// run is the command body. It returns instead of exiting so the deferred
// cleanups always execute: a failed experiment must still flush and close
// the -trace-out / -explain-out gzip sinks (a gzip stream abandoned
// without its trailer is unreadable) and write whatever quality records
// the campaigns already produced.
func run(obsFlags obs.Flags, profFlags prof.Flags, quick bool, seeds int, only string, jobs, progress int, qualityOut string, stallAfter time.Duration) (err error) {
	tr, finishObs, err := obsFlags.Setup("mdexp")
	if err != nil {
		return err
	}
	defer func() {
		if e := finishObs(); err == nil {
			err = e
		}
	}()
	finishProf, err := profFlags.Setup(tr.Registry())
	if err != nil {
		return err
	}
	// Deferred after finishObs, so it runs first: the -prof-out summary
	// snapshot lands before the obs run record closes.
	defer func() {
		if e := finishProf(); err == nil {
			err = e
		}
	}()
	// The recorder stays nil without a sink: retaining a whole campaign's
	// candidate events in memory with nothing reading them helps nobody.
	var rec *explain.Recorder
	if obsFlags.ExplainOut != "" {
		var finishExplain func() error
		rec, finishExplain, err = explain.Open(obsFlags.ExplainOut, "mdexp")
		if err != nil {
			return err
		}
		defer func() {
			if e := finishExplain(); err == nil {
				err = e
			}
		}()
	}
	o := exp.Options{Quick: quick, Seeds: seeds, Workers: jobs, Emitter: tr.Emitter(), Explain: rec}
	if progress > 0 {
		o.Progress = exp.NewProgress(os.Stderr, time.Duration(progress)*time.Second)
	}
	if qualityOut != "" {
		o.Quality = &qrec.Collector{}
	}
	o.Watchdog = exp.NewWatchdog(os.Stderr, stallAfter)
	defer func() {
		o.Progress.Stop()
		o.Watchdog.Stop()
		if e := writeQuality(qualityOut, o.Quality); err == nil {
			err = e
		}
	}()

	if only == "" {
		return exp.All(os.Stdout, o)
	}
	fns := map[string]func(*exp.Options) error{
		"T1": func(o *exp.Options) error { return exp.T1Characteristics(os.Stdout, *o) },
		"T2": func(o *exp.Options) error { return exp.T2SingleDefect(os.Stdout, *o) },
		"T3": func(o *exp.Options) error { return exp.T3MultiDefect(os.Stdout, *o) },
		"T4": func(o *exp.Options) error { return exp.T4PatternCharacter(os.Stdout, *o) },
		"T5": func(o *exp.Options) error { return exp.T5Ablation(os.Stdout, *o) },
		"T6": func(o *exp.Options) error { return exp.T6IntraCell(os.Stdout, *o) },
		"T7": func(o *exp.Options) error { return exp.T7DelayDefects(os.Stdout, *o) },
		"T8": func(o *exp.Options) error { return exp.T8ResolutionImprovement(os.Stdout, *o) },
		"T9": func(o *exp.Options) error { return exp.T9Compaction(os.Stdout, *o) },
		"F1": func(o *exp.Options) error { return exp.F1AccuracyVsDefects(os.Stdout, *o) },
		"F2": func(o *exp.Options) error { return exp.F2ResolutionVsDefects(os.Stdout, *o) },
		"F3": func(o *exp.Options) error { return exp.F3Runtime(os.Stdout, *o) },
		"F4": func(o *exp.Options) error { return exp.F4DefectTypes(os.Stdout, *o) },
	}
	fn, ok := fns[only]
	if !ok {
		return fmt.Errorf("unknown experiment %q", only)
	}
	return fn(&o)
}

// writeQuality serializes the collected quality records ("-" = stdout).
// No-op when no -quality-out was requested.
func writeQuality(path string, col *qrec.Collector) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return col.File().Encode(os.Stdout)
	}
	return qrec.Write(path, col.File())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdexp:", err)
	os.Exit(1)
}
