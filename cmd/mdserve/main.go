// mdserve is the long-running diagnosis service: it loads circuits and
// test sets once at startup into a workload registry (with a warm shared
// cone cache per workload) and serves diagnosis requests over HTTP/JSON,
// coalescing concurrent same-workload requests into shared fault-parallel
// scoring passes. Reports are bit-identical to mddiag for the same
// (circuit, patterns, response).
//
// Usage:
//
//	mdserve -addr :8080 -workload c17 -workload b0300
//	mdserve -addr :8080 -workload mychip=design.bench:patterns.txt
//
// Endpoints:
//
//	POST /v1/diagnose        one device response → ranked candidate report
//	                         (?explain=1 attaches the flight-recorder narrative)
//	POST /v1/diagnose/batch  several devices of one workload in one call
//	POST /v1/ingest          stream JSONL datalog records through the
//	                         syndrome-fingerprint dedupe front (gzip ok)
//	GET  /v1/volume/summary  deterministic fleet aggregate per workload
//	GET  /v1/workloads       the registry: names, sizes, queue depths
//	GET  /healthz            liveness (always 200 while the process runs)
//	GET  /readyz             readiness (503 once draining)
//	GET  /metrics            Prometheus text format (admission, batching,
//	                         latency, cone-cache and core-engine metrics)
//	GET  /debug/trace        tail-captured request span trees as NDJSON
//	                         (mdtrace reads this body or -trace-spans-out)
//	GET  /debug/incidents    index of spooled incident bundles (404 until
//	                         -incident-dir arms the observatory)
//
// Service knobs: -max-inflight, -queue-depth, -max-batch, -max-wait,
// -request-timeout, -j, -trace-sample, -trace-capture, -trace-spans-out,
// -incident-dir, -incident-max-bundles, -incident-max-bytes,
// -incident-min-interval (see README "Serving" and "Incidents & replay"). On SIGTERM/SIGINT the
// server drains gracefully: admission stops (429/503), queued and
// in-flight requests finish (bounded by -drain-timeout), observability
// sinks flush, and -service-record-out captures the run's serving
// behaviour for mdtrend compare-serve.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"multidiag/internal/cio"
	"multidiag/internal/exp"
	"multidiag/internal/obs"
	"multidiag/internal/prof"
	"multidiag/internal/qrec"
	"multidiag/internal/serve"
	"multidiag/internal/tester"
)

// workloadFlags collects repeated -workload values.
type workloadFlags []string

func (w *workloadFlags) String() string { return strings.Join(*w, ",") }
func (w *workloadFlags) Set(v string) error {
	*w = append(*w, v)
	return nil
}

func main() {
	var workloads workloadFlags
	var (
		addr           = flag.String("addr", "127.0.0.1:8080", "listen address")
		maxInflight    = flag.Int("max-inflight", 64, "admitted-but-unfinished request cap (past it: 429)")
		maxBytes       = flag.Int64("max-inflight-bytes", 64<<20, "summed in-flight request body byte cap (past it: 429)")
		queueDepth     = flag.Int("queue-depth", 32, "per-workload admission queue capacity (past it: 429)")
		maxBatch       = flag.Int("max-batch", 8, "max requests coalesced into one scoring pass")
		maxWait        = flag.Duration("max-wait", 2*time.Millisecond, "max linger for batch stragglers (only under load)")
		requestTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline (a request's timeout_ms may lower it)")
		jobs           = flag.Int("j", 0, "fault-parallel workers per scoring pass (0 = GOMAXPROCS)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
		recordOut      = flag.String("service-record-out", "", "write a qrec service record (for mdtrend compare-serve) to `file` on shutdown")
		recordLabel    = flag.String("service-record-label", "serve", "label for the service record")
		traceSample    = flag.Float64("trace-sample", 0.1, "tail-sampler retention probability for routine request traces (shed/504/panic/slow always kept); negative disables request tracing")
		traceCapacity  = flag.Int("trace-capture", 64, "capacity of EACH /debug/trace retention ring (flagged + sampled)")
		traceOut       = flag.String("trace-spans-out", "", "append every retained span tree as JSONL to `file` (.gz compresses; mdtrace reads it)")
		incidentDir    = flag.String("incident-dir", "", "spool anomaly-triggered debug bundles to `dir` (mdreplay re-runs them offline); empty disables")
		incidentMax    = flag.Int("incident-max-bundles", 32, "max bundles retained in -incident-dir (overwrite-oldest)")
		incidentBytes  = flag.Int64("incident-max-bytes", 64<<20, "max summed bundle bytes in -incident-dir (overwrite-oldest)")
		incidentEvery  = flag.Duration("incident-min-interval", time.Second, "min interval between captures per trigger kind (0 = unlimited)")
		volumeCache    = flag.Int("volume-cache", 0, "fingerprint cache entries per workload for /v1/ingest dedupe (0 = 16k default, -1 disables)")
		volumeBucket   = flag.Int("volume-trend-bucket", 0, "ingest trend granularity: devices per bucket, or seconds when records carry timestamps (0 = default)")
		verbose        = flag.Bool("v", false, "log request counters on shutdown")
	)
	flag.Var(&workloads, "workload", "workload to register: a built-in name (c17, add16, b0300, …) or name=circuit.bench:patterns.txt; repeatable")
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	var profFlags prof.Flags
	profFlags.Register(flag.CommandLine)
	flag.Parse()
	if len(workloads) == 0 {
		fmt.Fprintln(os.Stderr, "mdserve: at least one -workload is required")
		os.Exit(2)
	}
	if err := run(obsFlags, profFlags, workloads, *addr, serve.Config{
		MaxInflight:         *maxInflight,
		MaxInflightBytes:    *maxBytes,
		QueueDepth:          *queueDepth,
		MaxBatch:            *maxBatch,
		MaxWait:             *maxWait,
		RequestTimeout:      *requestTimeout,
		Workers:             *jobs,
		TraceSample:         *traceSample,
		TraceCapacity:       *traceCapacity,
		IncidentDir:         *incidentDir,
		IncidentMaxBundles:  *incidentMax,
		IncidentMaxBytes:    *incidentBytes,
		IncidentMinInterval: *incidentEvery,
		VolumeCacheCap:      *volumeCache,
		VolumeTrendBucket:   *volumeBucket,
	}, *traceOut, *drainTimeout, *recordOut, *recordLabel, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "mdserve:", err)
		os.Exit(1)
	}
}

// run is the daemon body. It returns instead of exiting so the deferred
// obs sink close always executes — the trace .gz must get its trailer
// even when startup or serving fails.
func run(obsFlags obs.Flags, profFlags prof.Flags, workloads []string, addr string, cfg serve.Config, traceOut string, drainTimeout time.Duration, recordOut, recordLabel string, verbose bool) (err error) {
	tr, finishObs, err := obsFlags.Setup("mdserve")
	if err != nil {
		return err
	}
	defer func() {
		if e := finishObs(); err == nil {
			err = e
		}
	}()
	finishProf, err := profFlags.Setup(tr.Registry())
	if err != nil {
		return err
	}
	// Deferred after finishObs, so it runs first: the -prof-out summary
	// snapshot lands before the obs run record closes.
	defer func() {
		if e := finishProf(); err == nil {
			err = e
		}
	}()
	cfg.Trace = tr

	if traceOut != "" {
		sink, serr := obs.CreateSink(traceOut)
		if serr != nil {
			return serr
		}
		// Closed after drain so the .gz trailer lands even on error exits.
		defer func() {
			if cerr := sink.Close(); err == nil {
				err = cerr
			}
		}()
		cfg.TraceSink = sink
	}

	specs := make([]serve.WorkloadSpec, 0, len(workloads))
	for _, w := range workloads {
		spec, err := resolveWorkload(w)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mdserve: workload %s: %d gates, %d POs, %d patterns\n",
			spec.Name, spec.Circuit.NumGates(), len(spec.Circuit.POs), len(spec.Patterns))
		specs = append(specs, spec)
	}
	srv, err := serve.New(cfg, specs)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	// The smoke script greps for this line to learn the bound port.
	fmt.Printf("mdserve: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "mdserve: draining")
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Order: stop admitting and finish queued work first (Drain), then
	// close the listener and idle connections (Shutdown).
	if derr := srv.Drain(dctx); derr != nil {
		fmt.Fprintf(os.Stderr, "mdserve: drain incomplete: %v\n", derr)
	}
	if serr := hs.Shutdown(dctx); serr != nil && !errors.Is(serr, context.DeadlineExceeded) {
		err = serr
	}
	rec := srv.ServiceRecord(recordLabel)
	if verbose {
		fmt.Fprintf(os.Stderr, "mdserve: served %d requests, shed %d, %d batches (mean %.2f), p95 %.2fms\n",
			rec.Requests, rec.Shed, rec.Batches, rec.MeanBatch, rec.ServiceP95MS)
	}
	if recordOut != "" {
		f := &qrec.ServiceFile{Schema: qrec.ServiceSchema}
		f.AddService(rec)
		if werr := qrec.WriteService(recordOut, f); err == nil {
			err = werr
		}
	}
	fmt.Fprintln(os.Stderr, "mdserve: drained")
	return err
}

// resolveWorkload parses one -workload value: a bare built-in name
// resolved through the experiment suite's registry, or
// name=circuit.bench:patterns.txt loading external files.
func resolveWorkload(v string) (serve.WorkloadSpec, error) {
	name, files, ok := strings.Cut(v, "=")
	if !ok {
		wl, err := exp.NamedWorkload(name)
		if err != nil {
			return serve.WorkloadSpec{}, err
		}
		return serve.WorkloadSpec{Name: name, Circuit: wl.Circuit, Patterns: wl.Patterns}, nil
	}
	circPath, patPath, ok := strings.Cut(files, ":")
	if !ok || name == "" {
		return serve.WorkloadSpec{}, fmt.Errorf("-workload %q: want name=circuit.bench:patterns.txt", v)
	}
	c, _, err := cio.LoadCircuit(circPath, false)
	if err != nil {
		return serve.WorkloadSpec{}, err
	}
	pf, err := os.Open(patPath)
	if err != nil {
		return serve.WorkloadSpec{}, err
	}
	pats, err := tester.ReadPatterns(pf)
	pf.Close()
	if err != nil {
		return serve.WorkloadSpec{}, err
	}
	return serve.WorkloadSpec{Name: name, Circuit: c, Patterns: pats}, nil
}
