// mdgen generates benchmark circuits in .bench format: seeded random
// netlists or structured arithmetic/control circuits.
//
// Usage:
//
//	mdgen -kind rand -gates 1000 -pis 24 -pos 20 -seed 7 -o circuit.bench
//	mdgen -kind adder -width 16 -o add16.bench
//	mdgen -kind c17 -o c17.bench
package main

import (
	"flag"
	"fmt"
	"os"

	"multidiag/internal/cio"
	"multidiag/internal/circuits"
	"multidiag/internal/netlist"
)

func main() {
	var (
		kind  = flag.String("kind", "rand", "circuit kind: rand|adder|cla|shifter|cmp|mul|mux|parity|decoder|alu|c17")
		gates = flag.Int("gates", 500, "logic gate count (rand)")
		pis   = flag.Int("pis", 16, "primary inputs (rand)")
		pos   = flag.Int("pos", 0, "primary outputs (rand; 0 = auto)")
		width = flag.Int("width", 8, "datapath width (adder/mul/alu) or tree size (mux/parity/decoder)")
		seed  = flag.Int64("seed", 1, "generator seed (rand)")
		out   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var (
		c   *netlist.Circuit
		err error
	)
	switch *kind {
	case "rand":
		c, err = circuits.Generate(circuits.GenConfig{
			Seed: *seed, NumPIs: *pis, NumGates: *gates, NumPOs: *pos,
		})
	case "adder":
		c, err = circuits.RippleAdder(*width)
	case "cla":
		c, err = circuits.CarryLookaheadAdder(*width)
	case "shifter":
		c, err = circuits.BarrelShifter(*width)
	case "cmp":
		c, err = circuits.Comparator(*width)
	case "mul":
		c, err = circuits.ArrayMultiplier(*width)
	case "mux":
		c, err = circuits.MuxTree(*width)
	case "parity":
		c, err = circuits.ParityTree(*width)
	case "decoder":
		c, err = circuits.Decoder(*width)
	case "alu":
		c, err = circuits.ALUSlice(*width)
	case "c17":
		c = circuits.C17()
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdgen:", err)
		os.Exit(1)
	}

	if *out != "" {
		// Format follows the extension: .v/.sv → Verilog, else .bench.
		if err := cio.SaveCircuit(*out, c); err != nil {
			fmt.Fprintln(os.Stderr, "mdgen:", err)
			os.Exit(1)
		}
	} else if err := netlist.WriteBench(os.Stdout, c); err != nil {
		fmt.Fprintln(os.Stderr, "mdgen:", err)
		os.Exit(1)
	}
	st := c.ComputeStats()
	fmt.Fprintf(os.Stderr, "mdgen: %s: %d PIs, %d POs, %d gates, depth %d\n",
		st.Name, st.PIs, st.POs, st.Gates, st.MaxLevel)
}
