// mdgen generates benchmark circuits in .bench format: seeded random
// netlists or structured arithmetic/control circuits. With -datalogs it
// instead emits a synthetic volume-diagnosis stream (JSONL records with
// a controllable repeat ratio) for mdvol and the /v1/ingest endpoint.
//
// Usage:
//
//	mdgen -kind rand -gates 1000 -pis 24 -pos 20 -seed 7 -o circuit.bench
//	mdgen -kind adder -width 16 -o add16.bench
//	mdgen -kind c17 -o c17.bench
//	mdgen -datalogs 1000 -workload b0300 -repeat 0.9 -o datalogs.jsonl.gz
package main

import (
	"flag"
	"fmt"
	"os"

	"multidiag/internal/cio"
	"multidiag/internal/circuits"
	"multidiag/internal/netlist"
)

func main() {
	var (
		kind  = flag.String("kind", "rand", "circuit kind: rand|adder|cla|shifter|cmp|mul|mux|parity|decoder|alu|c17")
		gates = flag.Int("gates", 500, "logic gate count (rand)")
		pis   = flag.Int("pis", 16, "primary inputs (rand)")
		pos   = flag.Int("pos", 0, "primary outputs (rand; 0 = auto)")
		width = flag.Int("width", 8, "datapath width (adder/mul/alu) or tree size (mux/parity/decoder)")
		seed  = flag.Int64("seed", 1, "generator seed (rand, datalogs)")
		out   = flag.String("o", "", "output file (default stdout; .gz compresses datalog streams)")

		datalogs = flag.Int("datalogs", 0, "emit a synthetic datalog stream of this many records instead of a circuit")
		workload = flag.String("workload", "c17", "datalog-stream workload: a built-in name (c17, add16, b0300, …)")
		repeat   = flag.Float64("repeat", 0.9, "datalog-stream target fraction of records repeating an earlier syndrome")
		sites    = flag.Int("sites", 4, "datalog-stream synthetic site count")
		defects  = flag.Int("defects", 2, "datalog-stream defects per device")
	)
	flag.Parse()

	if *datalogs > 0 {
		if err := runDatalogs(*datalogs, *workload, *repeat, *sites, *defects, *seed, *out); err != nil {
			fmt.Fprintln(os.Stderr, "mdgen:", err)
			os.Exit(1)
		}
		return
	}

	var (
		c   *netlist.Circuit
		err error
	)
	switch *kind {
	case "rand":
		c, err = circuits.Generate(circuits.GenConfig{
			Seed: *seed, NumPIs: *pis, NumGates: *gates, NumPOs: *pos,
		})
	case "adder":
		c, err = circuits.RippleAdder(*width)
	case "cla":
		c, err = circuits.CarryLookaheadAdder(*width)
	case "shifter":
		c, err = circuits.BarrelShifter(*width)
	case "cmp":
		c, err = circuits.Comparator(*width)
	case "mul":
		c, err = circuits.ArrayMultiplier(*width)
	case "mux":
		c, err = circuits.MuxTree(*width)
	case "parity":
		c, err = circuits.ParityTree(*width)
	case "decoder":
		c, err = circuits.Decoder(*width)
	case "alu":
		c, err = circuits.ALUSlice(*width)
	case "c17":
		c = circuits.C17()
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdgen:", err)
		os.Exit(1)
	}

	if *out != "" {
		// Format follows the extension: .v/.sv → Verilog, else .bench.
		if err := cio.SaveCircuit(*out, c); err != nil {
			fmt.Fprintln(os.Stderr, "mdgen:", err)
			os.Exit(1)
		}
	} else if err := netlist.WriteBench(os.Stdout, c); err != nil {
		fmt.Fprintln(os.Stderr, "mdgen:", err)
		os.Exit(1)
	}
	st := c.ComputeStats()
	fmt.Fprintf(os.Stderr, "mdgen: %s: %d PIs, %d POs, %d gates, depth %d\n",
		st.Name, st.PIs, st.POs, st.Gates, st.MaxLevel)
}
