package main

import (
	"fmt"
	"io"
	"os"

	"multidiag/internal/exp"
	"multidiag/internal/obs"
	"multidiag/internal/volume"
)

// runDatalogs is the -datalogs mode: instead of a circuit, mdgen emits a
// synthetic volume-diagnosis stream — N JSONL records over a seeded
// population of multi-defect devices with a controllable repeat ratio —
// so dedupe behaviour is reproducible in tests, benches and vol-smoke.
func runDatalogs(n int, workloadName string, repeat float64, sites, defects int, seed int64, out string) error {
	wl, err := exp.NamedWorkload(workloadName)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "" {
		sink, err := obs.CreateSink(out)
		if err != nil {
			return err
		}
		defer sink.Close()
		w = sink
	}
	unique, err := volume.SynthStream(w, volume.SynthConfig{
		Workload: workloadName,
		Circuit:  wl.Circuit,
		Patterns: wl.Patterns,
		N:        n,
		Repeat:   repeat,
		Sites:    sites,
		Defects:  defects,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mdgen: %d datalog records for %s: %d distinct syndromes (target repeat %.2f, realized %.3f)\n",
		n, workloadName, unique, repeat, 1-float64(unique)/float64(n))
	return nil
}
