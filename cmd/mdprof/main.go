// mdprof analyzes the continuous-profiling snapshot streams the engines
// write with -prof-out (and serve at /debug/prof): per-phase
// allocation/contention attribution tables, diffs between two runs, and a
// CI gate against a committed per-phase baseline.
//
// Usage:
//
//	mdprof report run.prof.jsonl             # attribution table of one run
//	mdprof diff base.jsonl cur.jsonl         # per-phase per-call deltas
//	mdprof baseline run.prof.jsonl -o PROF_baseline.json
//	mdprof gate PROF_baseline.json cur.jsonl [-warn-pct 25] [-fail-pct 50]
//
// Inputs are mdprof/v1 JSONL (".gz" decompresses, "-" reads stdin). Every
// command works from the LAST record carrying a phase table — the
// cumulative state at the end of the run — so partial streams from a
// killed process still analyze. gate normalizes to per-call averages
// (alloc bytes and objects per phase window), warns beyond -warn-pct,
// and exits non-zero beyond -fail-pct, printing GitHub Actions
// annotations inside workflows; absolute growth below -min-bytes /
// -min-objs never gates (tiny phases flap by a few KiB run to run), and
// phases present on only one side are reported but never fatal, so a
// baseline refresh and a new phase can land in the same change.
package main

import (
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"multidiag/internal/prof"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "report":
		err = reportMain(os.Args[2:])
	case "diff":
		err = diffMain(os.Args[2:])
	case "baseline":
		err = baselineMain(os.Args[2:])
	case "gate":
		err = gateMain(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdprof:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mdprof report <run.jsonl|->
       mdprof diff <base.jsonl> <cur.jsonl>
       mdprof baseline <run.jsonl|-> [-o file]
       mdprof gate <baseline.json> <cur.jsonl|-> [-warn-pct n] [-fail-pct n] [-min-bytes n] [-min-objs n]`)
	os.Exit(2)
}

// BaselineSchema identifies committed per-phase baselines.
const BaselineSchema = "mdprof-baseline/v1"

// PhaseBaseline is one phase's committed per-call allocation budget.
type PhaseBaseline struct {
	Count             int64   `json:"n"`
	AllocBytesPerCall float64 `json:"alloc_bytes_per_call"`
	AllocObjsPerCall  float64 `json:"alloc_objects_per_call"`
}

// Baseline is the committed PROF_baseline.json layout.
type Baseline struct {
	Schema string                   `json:"schema"`
	Phases map[string]PhaseBaseline `json:"phases"`
}

// loadSnapshots reads an mdprof/v1 JSONL stream ("-" = stdin, ".gz"
// decompresses), skipping records with other schemas so a mixed sink
// still parses.
func loadSnapshots(path string) ([]prof.Snapshot, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
		if strings.HasSuffix(path, ".gz") {
			zr, err := gzip.NewReader(f)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			defer zr.Close()
			r = zr
		}
	}
	var out []prof.Snapshot
	dec := json.NewDecoder(r)
	for {
		var s prof.Snapshot
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if s.Schema == prof.Schema {
			out = append(out, s)
		}
	}
	return out, nil
}

// finalAttribution returns the last record carrying a phase table — the
// run's cumulative state. Records are scanned back-to-front so a stream
// that ends in phase-less pin records still resolves.
func finalAttribution(snaps []prof.Snapshot) (prof.Snapshot, error) {
	for i := len(snaps) - 1; i >= 0; i-- {
		if len(snaps[i].Phases) > 0 {
			return snaps[i], nil
		}
	}
	return prof.Snapshot{}, fmt.Errorf("no snapshot with a phase table (was the engine run with -prof?)")
}

func loadFinal(path string) (prof.Snapshot, error) {
	snaps, err := loadSnapshots(path)
	if err != nil {
		return prof.Snapshot{}, err
	}
	return finalAttribution(snaps)
}

func reportMain(args []string) error {
	fs := flag.NewFlagSet("mdprof report", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	snaps, err := loadSnapshots(fs.Arg(0))
	if err != nil {
		return err
	}
	final, err := finalAttribution(snaps)
	if err != nil {
		return err
	}
	fmt.Printf("run: %d snapshots over %s (%d pinned)\n",
		len(snaps), fmtSec(final.TSNS), countKind(snaps, "pin"))
	fmt.Printf("process: %s allocated / %d objects, mutex wait %s, gc pause %s, heap %s, %d goroutines\n\n",
		fmtB(final.AllocBytes), final.AllocObjects,
		fmtSec(final.MutexWaitNS), fmtSec(final.GCPauseNS),
		fmtB(final.HeapBytes), final.Goroutines)
	prof.WriteTable(os.Stdout, final.Phases)
	if pins := pinReasons(snaps); len(pins) > 0 {
		fmt.Println("\npinned snapshots:")
		for _, p := range pins {
			fmt.Printf("  %s\n", p)
		}
	}
	return nil
}

func countKind(snaps []prof.Snapshot, kind string) int {
	n := 0
	for _, s := range snaps {
		if s.Kind == kind {
			n++
		}
	}
	return n
}

// pinReasons summarizes the pin ring: "reason ×count" in first-seen order.
func pinReasons(snaps []prof.Snapshot) []string {
	counts := map[string]int{}
	var order []string
	for _, s := range snaps {
		if s.Kind != "pin" {
			continue
		}
		if counts[s.Reason] == 0 {
			order = append(order, s.Reason)
		}
		counts[s.Reason]++
	}
	out := make([]string, len(order))
	for i, r := range order {
		out[i] = fmt.Sprintf("%s ×%d", r, counts[r])
	}
	return out
}

func diffMain(args []string) error {
	fs := flag.NewFlagSet("mdprof diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	base, err := loadFinal(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := loadFinal(fs.Arg(1))
	if err != nil {
		return err
	}
	bb, cb := toBaseline(base.Phases), toBaseline(cur.Phases)
	fmt.Fprintf(os.Stdout, "%-16s %16s %16s %9s %14s %14s %9s\n",
		"phase", "base B/call", "cur B/call", "delta", "base objs", "cur objs", "delta")
	for _, name := range unionNames(bb.Phases, cb.Phases) {
		b, inBase := bb.Phases[name]
		c, inCur := cb.Phases[name]
		switch {
		case !inCur:
			fmt.Printf("%-16s %16.0f %16s %9s\n", name, b.AllocBytesPerCall, "—", "gone")
		case !inBase:
			fmt.Printf("%-16s %16s %16.0f %9s\n", name, "—", c.AllocBytesPerCall, "new")
		default:
			fmt.Printf("%-16s %16.0f %16.0f %+8.1f%% %14.1f %14.1f %+8.1f%%\n", name,
				b.AllocBytesPerCall, c.AllocBytesPerCall, pctDelta(b.AllocBytesPerCall, c.AllocBytesPerCall),
				b.AllocObjsPerCall, c.AllocObjsPerCall, pctDelta(b.AllocObjsPerCall, c.AllocObjsPerCall))
		}
	}
	return nil
}

func baselineMain(args []string) error {
	fs := flag.NewFlagSet("mdprof baseline", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	paths, rest := splitPositional(args)
	fs.Parse(rest)
	paths = append(paths, fs.Args()...)
	if len(paths) != 1 {
		usage()
	}
	final, err := loadFinal(paths[0])
	if err != nil {
		return err
	}
	b := toBaseline(final.Phases)
	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return err
	}
	if *out != "" {
		if err := w.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mdprof: wrote %d phases to %s\n", len(b.Phases), *out)
	}
	return nil
}

func gateMain(args []string) error {
	fs := flag.NewFlagSet("mdprof gate", flag.ExitOnError)
	warnPct := fs.Float64("warn-pct", 25, "per-phase per-call alloc regression percentage that warns")
	failPct := fs.Float64("fail-pct", 50, "per-phase per-call alloc regression percentage that fails (exit 1); 0 disables")
	minBytes := fs.Float64("min-bytes", 16384, "noise floor: bytes/call growth below this never gates")
	minObjs := fs.Float64("min-objs", 256, "noise floor: objects/call growth below this never gates")
	paths, rest := splitPositional(args)
	fs.Parse(rest)
	paths = append(paths, fs.Args()...)
	if len(paths) != 2 {
		usage()
	}
	base, err := loadBaseline(paths[0])
	if err != nil {
		return err
	}
	final, err := loadFinal(paths[1])
	if err != nil {
		return err
	}
	warnings, failures := gate(os.Stdout, base, toBaseline(final.Phases), *warnPct, *failPct, *minBytes, *minObjs)
	if failures > 0 {
		return fmt.Errorf("%d phase(s) beyond the %.0f%% failure threshold (%d warning(s))", failures, *failPct, warnings)
	}
	return nil
}

// gate prints the per-phase comparison and returns how many per-call
// alloc regressions (bytes or objects, whichever is worse) crossed the
// warn and fail thresholds. A dimension only gates when its absolute
// per-call growth also clears its noise floor: tiny phases flap by a
// few KiB and a handful of objects run to run (GC timing, per-P stat
// flush lag), and a 2× jump from 2KiB is noise where a 2× jump from
// 2MiB is a bug. Phases on only one side are reported but never fatal.
func gate(w io.Writer, base, cur *Baseline, warnPct, failPct, minBytes, minObjs float64) (warnings, failures int) {
	fmt.Fprintf(w, "%-16s %16s %16s %9s\n", "phase", "base B/call", "cur B/call", "delta")
	for _, name := range unionNames(base.Phases, cur.Phases) {
		b, inBase := base.Phases[name]
		c, inCur := cur.Phases[name]
		switch {
		case !inCur:
			fmt.Fprintf(w, "%-16s %16.0f %16s %9s\n", name, b.AllocBytesPerCall, "—", "gone")
		case !inBase:
			fmt.Fprintf(w, "%-16s %16s %16.0f %9s\n", name, "—", c.AllocBytesPerCall, "new")
		default:
			dBytes := pctDelta(b.AllocBytesPerCall, c.AllocBytesPerCall)
			dObjs := pctDelta(b.AllocObjsPerCall, c.AllocObjsPerCall)
			var delta float64
			var unit string
			var bv, cv float64
			if c.AllocBytesPerCall-b.AllocBytesPerCall >= minBytes {
				delta, unit = dBytes, "B/call"
				bv, cv = b.AllocBytesPerCall, c.AllocBytesPerCall
			}
			if c.AllocObjsPerCall-b.AllocObjsPerCall >= minObjs && dObjs > delta {
				delta, unit = dObjs, "objs/call"
				bv, cv = b.AllocObjsPerCall, c.AllocObjsPerCall
			}
			fmt.Fprintf(w, "%-16s %16.0f %16.0f %+8.1f%%\n", name, b.AllocBytesPerCall, c.AllocBytesPerCall, dBytes)
			switch {
			case unit == "": // below the noise floors
			case failPct > 0 && delta > failPct:
				failures++
				annotate("error", fmt.Sprintf("phase %s allocation regressed %.1f%% (%.0f → %.0f %s, failure threshold %.0f%%)",
					name, delta, bv, cv, unit, failPct))
			case delta > warnPct:
				warnings++
				annotate("warning", fmt.Sprintf("phase %s allocation regressed %.1f%% (%.0f → %.0f %s, threshold %.0f%%)",
					name, delta, bv, cv, unit, warnPct))
			}
		}
	}
	return warnings, failures
}

// splitPositional peels leading positional args off so subcommands accept
// "mdprof baseline run.jsonl -o file" as documented ("-" counts as a
// positional stdin path, not a flag).
func splitPositional(args []string) (paths, rest []string) {
	rest = args
	for len(rest) > 0 && (rest[0] == "-" || !strings.HasPrefix(rest[0], "-")) {
		paths = append(paths, rest[0])
		rest = rest[1:]
	}
	return paths, rest
}

// toBaseline normalizes a phase table to per-call averages.
func toBaseline(phases []prof.PhaseProf) *Baseline {
	b := &Baseline{Schema: BaselineSchema, Phases: map[string]PhaseBaseline{}}
	for _, p := range phases {
		if p.Count == 0 {
			continue
		}
		b.Phases[p.Name] = PhaseBaseline{
			Count:             p.Count,
			AllocBytesPerCall: float64(p.AllocBytes) / float64(p.Count),
			AllocObjsPerCall:  float64(p.AllocObjects) / float64(p.Count),
		}
	}
	return b
}

func loadBaseline(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var b Baseline
	if err := json.NewDecoder(f).Decode(&b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, b.Schema, BaselineSchema)
	}
	if len(b.Phases) == 0 {
		return nil, fmt.Errorf("%s: no phases", path)
	}
	return &b, nil
}

func unionNames(a, b map[string]PhaseBaseline) []string {
	seen := map[string]bool{}
	for n := range a {
		seen[n] = true
	}
	for n := range b {
		seen[n] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// pctDelta is the percentage change base → cur (0 when base is 0: a
// phase that allocated nothing before cannot regress by percentage, and
// the "new phase" path reports genuinely new work).
func pctDelta(base, cur float64) float64 {
	if base <= 0 {
		return 0
	}
	return (cur - base) / base * 100
}

// annotate prints a regression annotation, using GitHub Actions syntax
// inside workflows so the step is flagged in the UI (same convention as
// cmd/benchdiff).
func annotate(level, msg string) {
	if os.Getenv("GITHUB_ACTIONS") == "true" {
		fmt.Printf("::%s title=profile regression::%s\n", level, msg)
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %s\n", strings.ToUpper(level), msg)
}

func fmtSec(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
}

func fmtB(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
