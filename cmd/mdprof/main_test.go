package main

import (
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multidiag/internal/prof"
)

func writeStream(t *testing.T, name string, snaps []prof.Snapshot) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var enc *json.Encoder
	var zw *gzip.Writer
	if strings.HasSuffix(name, ".gz") {
		zw = gzip.NewWriter(f)
		enc = json.NewEncoder(zw)
	} else {
		enc = json.NewEncoder(f)
	}
	for _, s := range snaps {
		if err := enc.Encode(s); err != nil {
			t.Fatal(err)
		}
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func snap(kind string, seq int64, phases ...prof.PhaseProf) prof.Snapshot {
	return prof.Snapshot{Schema: prof.Schema, Kind: kind, Seq: seq, Phases: phases}
}

func TestLoadAndFinalAttribution(t *testing.T) {
	path := writeStream(t, "run.jsonl", []prof.Snapshot{
		snap("sample", 0, prof.PhaseProf{Name: "score", Count: 1, AllocBytes: 100}),
		snap("summary", 1, prof.PhaseProf{Name: "score", Count: 2, AllocBytes: 250}),
		snap("pin", 2), // phase-less tail must not win
	})
	snaps, err := loadSnapshots(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("loaded %d snapshots, want 3", len(snaps))
	}
	final, err := finalAttribution(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if final.Seq != 1 || final.Phases[0].AllocBytes != 250 {
		t.Fatalf("final = %+v, want the seq-1 summary", final)
	}
}

func TestLoadSnapshotsGzipAndForeignSchema(t *testing.T) {
	path := writeStream(t, "run.jsonl.gz", []prof.Snapshot{
		{Schema: "other/v1", Kind: "sample"},
		snap("summary", 0, prof.PhaseProf{Name: "extract", Count: 1}),
	})
	snaps, err := loadSnapshots(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Phases[0].Name != "extract" {
		t.Fatalf("snaps = %+v, want just the mdprof record", snaps)
	}
}

func TestFinalAttributionEmpty(t *testing.T) {
	if _, err := finalAttribution([]prof.Snapshot{snap("pin", 0)}); err == nil {
		t.Fatal("no error for a stream without phase tables")
	}
}

func TestToBaselinePerCall(t *testing.T) {
	b := toBaseline([]prof.PhaseProf{
		{Name: "score", Count: 4, AllocBytes: 4000, AllocObjects: 40},
		{Name: "idle", Count: 0, AllocBytes: 999}, // zero-count phases dropped
	})
	if len(b.Phases) != 1 {
		t.Fatalf("phases = %+v", b.Phases)
	}
	p := b.Phases["score"]
	if p.AllocBytesPerCall != 1000 || p.AllocObjsPerCall != 10 {
		t.Fatalf("per-call = %+v, want 1000 B / 10 objs", p)
	}
}

// TestGateCatchesInflation is the acceptance check: a synthetic 2× per-
// phase allocation inflation must fail the gate at the default 50%
// failure threshold.
func TestGateCatchesInflation(t *testing.T) {
	base := toBaseline([]prof.PhaseProf{
		{Name: "score", Count: 10, AllocBytes: 1_000_000, AllocObjects: 50_000},
		{Name: "extract", Count: 10, AllocBytes: 1_000_000, AllocObjects: 10_000},
	})
	cur := toBaseline([]prof.PhaseProf{
		{Name: "score", Count: 10, AllocBytes: 2_000_000, AllocObjects: 100_000},  // 2× — must fail
		{Name: "extract", Count: 10, AllocBytes: 1_300_000, AllocObjects: 10_000}, // +30% — warns
	})
	var out strings.Builder
	warnings, failures := gate(&out, base, cur, 25, 50, 16384, 256)
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 (2× inflation)\n%s", failures, out.String())
	}
	if warnings != 1 {
		t.Fatalf("warnings = %d, want 1 (+30%% bytes)\n%s", warnings, out.String())
	}
}

func TestGateCleanRun(t *testing.T) {
	base := toBaseline([]prof.PhaseProf{{Name: "score", Count: 10, AllocBytes: 10000, AllocObjects: 500}})
	cur := toBaseline([]prof.PhaseProf{
		{Name: "score", Count: 10, AllocBytes: 10500, AllocObjects: 510},
		{Name: "newphase", Count: 1, AllocBytes: 999999}, // new phases report, never fail
	})
	var out strings.Builder
	warnings, failures := gate(&out, base, cur, 25, 50, 16384, 256)
	if warnings != 0 || failures != 0 {
		t.Fatalf("warnings=%d failures=%d, want 0/0\n%s", warnings, failures, out.String())
	}
	if !strings.Contains(out.String(), "new") {
		t.Fatalf("new phase not reported:\n%s", out.String())
	}
}

func TestGateObjectRegressionDominates(t *testing.T) {
	// Bytes flat, objects 2×: the gate takes the worse of the two.
	base := toBaseline([]prof.PhaseProf{{Name: "score", Count: 10, AllocBytes: 1_000_000, AllocObjects: 100_000}})
	cur := toBaseline([]prof.PhaseProf{{Name: "score", Count: 10, AllocBytes: 1_000_000, AllocObjects: 200_000}})
	var out strings.Builder
	_, failures := gate(&out, base, cur, 25, 50, 16384, 256)
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 (objects doubled)\n%s", failures, out.String())
	}
}

func TestGateNoiseFloor(t *testing.T) {
	// A tiny phase doubling (2.6KiB → 5.3KiB, +3 objects) is run-to-run
	// noise, not a regression: below the byte and object floors nothing
	// may warn or fail regardless of the percentage.
	base := toBaseline([]prof.PhaseProf{{Name: "xcheck", Count: 10, AllocBytes: 26_880, AllocObjects: 50}})
	cur := toBaseline([]prof.PhaseProf{{Name: "xcheck", Count: 10, AllocBytes: 53_760, AllocObjects: 80}})
	var out strings.Builder
	warnings, failures := gate(&out, base, cur, 25, 50, 16384, 256)
	if warnings != 0 || failures != 0 {
		t.Fatalf("warnings=%d failures=%d, want 0/0 below the noise floors\n%s", warnings, failures, out.String())
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "PROF_baseline.json")
	b := toBaseline([]prof.PhaseProf{{Name: "score", Count: 2, AllocBytes: 500, AllocObjects: 20}})
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(f).Encode(b); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phases["score"].AllocBytesPerCall != 250 {
		t.Fatalf("round-trip = %+v", got.Phases)
	}
}

func TestLoadBaselineRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(path, []byte(`{"schema":"nope/v1","phases":{"x":{}}}`), 0o644)
	if _, err := loadBaseline(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
