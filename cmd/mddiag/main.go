// mddiag diagnoses a tester datalog against a circuit and test set: it
// reports the multiplet (the selected explanation), each member's
// equivalence class, fault-model annotations, and the consistency verdict.
//
// Usage:
//
//	mddiag -c circuit.bench -p patterns.txt -d device.datalog [-method ours|slat|intersect]
//
// Observability (see DESIGN.md §Observability):
//
//	-v                per-phase timing and counter summary footer
//	-trace-out f      JSONL span/run records of the diagnosis
//	-cpuprofile f     pprof CPU profile
//	-memprofile f     pprof heap profile at exit
//	-debug-addr a     live net/http/pprof + expvar listener
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"multidiag/internal/baseline"
	"multidiag/internal/cio"
	"multidiag/internal/core"
	"multidiag/internal/obs"
	"multidiag/internal/tester"
)

func main() {
	var (
		circ    = flag.String("c", "", "circuit .bench file (required)")
		pfile   = flag.String("p", "", "pattern file (required)")
		dfile   = flag.String("d", "", "datalog file (required)")
		method  = flag.String("method", "ours", "diagnosis engine: ours|slat|intersect")
		top     = flag.Int("top", 10, "also list the top-N ranked candidates (ours)")
		verbose = flag.Bool("v", false, "print a per-phase timing and counter summary footer")
	)
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()
	if *circ == "" || *pfile == "" || *dfile == "" {
		fmt.Fprintln(os.Stderr, "mddiag: -c, -p and -d are required")
		os.Exit(2)
	}
	tr, finishObs, err := obsFlags.Setup("mddiag")
	if err != nil {
		fatal(err)
	}
	c, _ := cio.MustLoad("mddiag", *circ, false)
	pf, err := os.Open(*pfile)
	if err != nil {
		fatal(err)
	}
	pats, err := tester.ReadPatterns(pf)
	pf.Close()
	if err != nil {
		fatal(err)
	}
	df, err := os.Open(*dfile)
	if err != nil {
		fatal(err)
	}
	log, err := tester.ReadDatalog(df)
	df.Close()
	if err != nil {
		fatal(err)
	}

	switch *method {
	case "ours":
		res, err := core.Diagnose(c, pats, log, core.Config{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("evidence: %d failing bits over %d failing patterns\n",
			len(res.Evidence), len(log.FailingPatterns()))
		fmt.Printf("extracted %d effect-cause candidates; multiplet size %d; elapsed %s\n",
			res.CandidatesExtracted, len(res.Multiplet), res.Elapsed)
		if !res.Consistent {
			fmt.Printf("WARNING: multiplet is X-inconsistent on patterns %v — evidence incomplete\n",
				res.InconsistentPatterns)
		}
		if res.UnexplainedBits > 0 {
			fmt.Printf("WARNING: %d evidence bits unexplained\n", res.UnexplainedBits)
		}
		for i, cd := range res.Multiplet {
			fmt.Printf("#%d %s  covers %d bits, %d mispredictions\n", i+1, cd.Name(c), cd.TFSF, cd.TPSF)
			for _, e := range cd.Equivalent {
				fmt.Printf("    ≡ %s\n", e.Name(c))
			}
			for _, m := range cd.Models {
				switch m.Kind {
				case core.BridgeModel:
					fmt.Printf("    model: dominant bridge, aggressor %s (%d mispred)\n",
						c.NameOf(m.Aggressor), m.Mispredictions)
				default:
					fmt.Printf("    model: stuck-at/open (%d mispred)\n", m.Mispredictions)
				}
			}
		}
		if *top > 0 {
			fmt.Println("ranked candidates:")
			for i, cd := range res.Ranked {
				if i >= *top {
					break
				}
				fmt.Printf("  %2d. %-20s TFSF=%d TPSF=%d\n", i+1, cd.Name(c), cd.TFSF, cd.TPSF)
			}
		}
	case "slat":
		res, err := baseline.SLAT(c, pats, log, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("SLAT patterns %d, non-SLAT %d; elapsed %s\n",
			res.SLATPatterns, res.NonSLATPatterns, res.Elapsed)
		for i, cd := range res.Multiplet {
			fmt.Printf("#%d %s  explains %d SLAT patterns\n", i+1, cd.Fault.Name(c), cd.Explained)
		}
	case "intersect":
		res, err := baseline.Intersection(c, pats, log)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d suspects after intersection+vindication; elapsed %s\n",
			len(res.Multiplet), res.Elapsed)
		for i, cd := range res.Multiplet {
			fmt.Printf("#%d %s\n", i+1, cd.Fault.Name(c))
		}
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	if *verbose {
		printSummary(tr)
	}
	if err := finishObs(); err != nil {
		fatal(err)
	}
}

// printSummary is the -v footer: per-phase wall time and the counter
// snapshot of the run (histogram buckets elided for readability).
func printSummary(tr *obs.Trace) {
	phases := tr.PhaseStats()
	if len(phases) > 0 {
		fmt.Println("--- phases ---")
		for _, ps := range phases {
			fmt.Printf("  %-24s %6d× %12s\n", ps.Name, ps.Count, ps.Total)
		}
	}
	snap := tr.Registry().Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		if strings.Contains(name, ".le_") {
			continue
		}
		names = append(names, name)
	}
	if len(names) > 0 {
		sort.Strings(names)
		fmt.Println("--- counters ---")
		for _, name := range names {
			fmt.Printf("  %-32s %d\n", name, snap[name])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mddiag:", err)
	os.Exit(1)
}
