// mddiag diagnoses a tester datalog against a circuit and test set: it
// reports the multiplet (the selected explanation), each member's
// equivalence class, fault-model annotations, and the consistency verdict.
//
// Usage:
//
//	mddiag -c circuit.bench -p patterns.txt -d device.datalog [-method ours|slat|intersect] [-j N]
//	mddiag explain -c circuit.bench -p patterns.txt -d device.datalog [-all] [-bits] [-j N]
//
// -j bounds the fault-parallel worker pool of the core engine's candidate
// scoring (0 = GOMAXPROCS, 1 = sequential); reports are bit-identical at
// every worker count. -conecache N attaches an N-entry cone cache and
// diagnoses twice (cold fill, then the warm replay that is printed);
// reports are bit-identical in both cache states. scripts/
// determinism_check.sh holds the engine to both claims in CI.
//
// The explain subcommand replays the diagnosis with the candidate flight
// recorder attached and renders a per-candidate lifecycle narrative
// (extract → score → cover → refine → xcheck) plus the per-failing-bit
// "who explains this bit" table.
//
// Observability (see DESIGN.md §Observability):
//
//	-v                per-phase timing, counter and histogram-quantile summary footer
//	-trace-out f      JSONL span/run records of the diagnosis (.gz compresses)
//	-span-out f       mdtrace/v1 span tree of the diagnosis (.gz compresses)
//	-explain-out f    JSONL candidate flight-recorder events (.gz compresses)
//	-cpuprofile f     pprof CPU profile
//	-memprofile f     pprof heap profile at exit
//	-debug-addr a     live net/http/pprof + expvar + Prometheus /metrics listener
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"multidiag/internal/baseline"
	"multidiag/internal/cio"
	"multidiag/internal/core"
	"multidiag/internal/explain"
	"multidiag/internal/fsim"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/prof"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
	"multidiag/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		if err := explainMain(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	var (
		circ    = flag.String("c", "", "circuit .bench file (required)")
		pfile   = flag.String("p", "", "pattern file (required)")
		dfile   = flag.String("d", "", "datalog file (required)")
		method  = flag.String("method", "ours", "diagnosis engine: ours|slat|intersect")
		top     = flag.Int("top", 10, "also list the top-N ranked candidates (ours)")
		jobs    = flag.Int("j", 0, "fault-parallel workers for candidate scoring (0 = GOMAXPROCS, 1 = sequential; ours)")
		ccap    = flag.Int("conecache", 0, "attach a cone cache of this capacity and diagnose twice — cold fill, then a warm replay whose report is the one printed; reports must be identical in both states (ours; used by the CI determinism check)")
		spanOut = flag.String("span-out", "", "write the diagnosis's span tree as mdtrace JSONL to `file` (.gz compresses; ours)")
		verbose = flag.Bool("v", false, "print a per-phase timing and counter summary footer")
	)
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	var profFlags prof.Flags
	profFlags.Register(flag.CommandLine)
	flag.Parse()
	if *circ == "" || *pfile == "" || *dfile == "" {
		fmt.Fprintln(os.Stderr, "mddiag: -c, -p and -d are required")
		os.Exit(2)
	}
	if err := run(obsFlags, profFlags, *circ, *pfile, *dfile, *method, *spanOut, *top, *jobs, *ccap, *verbose); err != nil {
		fatal(err)
	}
}

// run is the diagnose command body. It returns instead of exiting so the
// deferred sink closes always execute: an early error must still flush
// and close the -trace-out / -explain-out gzip sinks, otherwise a partial
// .gz stream is left without its trailer and the whole file is
// unreadable.
func run(obsFlags obs.Flags, profFlags prof.Flags, circ, pfile, dfile, method, spanOut string, top, jobs, ccap int, verbose bool) (err error) {
	tr, finishObs, err := obsFlags.Setup("mddiag")
	if err != nil {
		return err
	}
	defer func() {
		if e := finishObs(); err == nil {
			err = e
		}
	}()
	finishProf, err := profFlags.Setup(tr.Registry())
	if err != nil {
		return err
	}
	// Deferred after finishObs, so it runs FIRST: the final summary
	// snapshot reaches the -prof-out sink before the obs run record closes.
	defer func() {
		if e := finishProf(); err == nil {
			err = e
		}
	}()
	rec, finishExplain, err := openRecorder(obsFlags.ExplainOut, method)
	if err != nil {
		return err
	}
	defer func() {
		if e := finishExplain(); err == nil {
			err = e
		}
	}()
	c, pats, log, err := loadInputs(circ, pfile, dfile)
	if err != nil {
		return err
	}

	switch method {
	case "ours":
		// -span-out runs the diagnosis under a span tree, the same
		// instrumentation a served request gets, and writes the tree as one
		// mdtrace/v1 JSON line for cmd/mdtrace to analyze.
		ctx := context.Background()
		var tree *trace.Tree
		if spanOut != "" {
			tree = trace.NewTree(trace.TraceID{})
			ctx = trace.WithTree(ctx, tree)
		}
		cfg := core.Config{Explain: rec, Workers: jobs}
		if ccap > 0 {
			// Fill the cache with a throwaway pass so the printed report
			// reflects the warm-cache state; -conecache 0 (the default)
			// stays on the uncached path.
			cfg.ConeCache = fsim.NewConeCache(ccap)
			if _, err := core.DiagnoseCtx(ctx, c, pats, log, core.Config{Workers: jobs, ConeCache: cfg.ConeCache}); err != nil {
				return err
			}
		}
		res, err := core.DiagnoseCtx(ctx, c, pats, log, cfg)
		if err != nil {
			return err
		}
		if tree != nil {
			if err := writeSpanTree(spanOut, tree); err != nil {
				return err
			}
		}
		if err := core.WriteReport(os.Stdout, c, res, len(log.FailingPatterns()), top); err != nil {
			return err
		}
	case "slat":
		res, err := baseline.SLAT(c, pats, log, 0)
		if err != nil {
			return err
		}
		fmt.Printf("SLAT patterns %d, non-SLAT %d; elapsed %s\n",
			res.SLATPatterns, res.NonSLATPatterns, res.Elapsed)
		for i, cd := range res.Multiplet {
			fmt.Printf("#%d %s  explains %d SLAT patterns\n", i+1, cd.Fault.Name(c), cd.Explained)
		}
	case "intersect":
		res, err := baseline.Intersection(c, pats, log)
		if err != nil {
			return err
		}
		fmt.Printf("%d suspects after intersection+vindication; elapsed %s\n",
			len(res.Multiplet), res.Elapsed)
		for i, cd := range res.Multiplet {
			fmt.Printf("#%d %s\n", i+1, cd.Fault.Name(c))
		}
	default:
		return fmt.Errorf("unknown method %q", method)
	}

	if verbose {
		printSummary(tr)
	}
	return nil
}

// writeSpanTree serializes the finished tree to path as mdtrace JSONL.
func writeSpanTree(path string, tree *trace.Tree) (err error) {
	sink, err := obs.CreateSink(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sink.Close(); err == nil {
			err = cerr
		}
	}()
	return tree.Record().WriteJSONL(sink)
}

// explainMain is the explain subcommand: replay the diagnosis with the
// flight recorder attached and render the candidate narratives and the
// per-bit explanation table. Like run, it returns errors so the deferred
// sink closes fire on every path.
func explainMain(args []string) (err error) {
	fs := flag.NewFlagSet("mddiag explain", flag.ExitOnError)
	var (
		circ  = fs.String("c", "", "circuit .bench file (required)")
		pfile = fs.String("p", "", "pattern file (required)")
		dfile = fs.String("d", "", "datalog file (required)")
		all   = fs.Bool("all", false, "narrate every pruned candidate (default: first 10)")
		bits  = fs.Bool("bits", true, "render the per-failing-bit explanation table")
		jobs  = fs.Int("j", 0, "fault-parallel workers for candidate scoring (0 = GOMAXPROCS, 1 = sequential)")
	)
	var obsFlags obs.Flags
	obsFlags.Register(fs)
	var profFlags prof.Flags
	profFlags.Register(fs)
	fs.Parse(args)
	if *circ == "" || *pfile == "" || *dfile == "" {
		fmt.Fprintln(os.Stderr, "mddiag explain: -c, -p and -d are required")
		os.Exit(2)
	}
	tr, finishObs, err := obsFlags.Setup("mddiag")
	if err != nil {
		return err
	}
	defer func() {
		if e := finishObs(); err == nil {
			err = e
		}
	}()
	finishProf, err := profFlags.Setup(tr.Registry())
	if err != nil {
		return err
	}
	defer func() {
		if e := finishProf(); err == nil {
			err = e
		}
	}()
	rec, finishExplain, err := explain.Open(obsFlags.ExplainOut, "mddiag")
	if err != nil {
		return err
	}
	defer func() {
		if e := finishExplain(); err == nil {
			err = e
		}
	}()
	c, pats, log, err := loadInputs(*circ, *pfile, *dfile)
	if err != nil {
		return err
	}
	res, err := core.Diagnose(c, pats, log, core.Config{Explain: rec, Workers: *jobs})
	if err != nil {
		return err
	}
	fmt.Printf("diagnosis: %d evidence bits, %d candidates extracted, multiplet size %d, elapsed %s\n\n",
		len(res.Evidence), res.CandidatesExtracted, len(res.Multiplet), res.Elapsed)
	events, dropped := rec.Events()
	maxOther := 10
	if *all {
		maxOther = -1
	}
	if err := explain.RenderNarrative(os.Stdout, events, maxOther); err != nil {
		return err
	}
	if *bits {
		fmt.Println()
		if err := explain.RenderBitTable(os.Stdout, events); err != nil {
			return err
		}
	}
	if dropped > 0 {
		fmt.Printf("(%d events dropped past the in-memory retention cap; the JSONL stream is complete)\n", dropped)
	}
	return nil
}

// openRecorder opens the -explain-out recorder for the main command. The
// flight recorder instruments the core engine only, so other methods fail
// fast rather than writing an empty file.
func openRecorder(path, method string) (*explain.Recorder, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	if method != "ours" {
		return nil, nil, fmt.Errorf("-explain-out records the core engine only (method %q)", method)
	}
	return explain.Open(path, "mddiag")
}

// loadInputs reads the circuit, pattern and datalog files shared by both
// commands.
func loadInputs(circ, pfile, dfile string) (*netlist.Circuit, []sim.Pattern, *tester.Datalog, error) {
	c, _, err := cio.LoadCircuit(circ, false)
	if err != nil {
		return nil, nil, nil, err
	}
	pf, err := os.Open(pfile)
	if err != nil {
		return nil, nil, nil, err
	}
	pats, err := tester.ReadPatterns(pf)
	pf.Close()
	if err != nil {
		return nil, nil, nil, err
	}
	df, err := os.Open(dfile)
	if err != nil {
		return nil, nil, nil, err
	}
	log, err := tester.ReadDatalog(df)
	df.Close()
	if err != nil {
		return nil, nil, nil, err
	}
	return c, pats, log, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mddiag:", err)
	os.Exit(1)
}

// printSummary is the -v footer: per-phase wall time, the counter
// snapshot of the run, and one line per histogram with count/sum and the
// p50/p95/p99/max quantile summaries derived from the log₂ buckets.
func printSummary(tr *obs.Trace) {
	phases := tr.PhaseStats()
	if len(phases) > 0 {
		fmt.Println("--- phases ---")
		for _, ps := range phases {
			fmt.Printf("  %-24s %6d× %12s\n", ps.Name, ps.Count, ps.Total)
		}
	}
	// With -prof, the per-phase allocation/contention attribution table
	// (the same numbers mdprof reports from a -prof-out stream).
	if c := prof.Active(); c != nil {
		fmt.Println("--- profile (per phase) ---")
		prof.WriteTable(os.Stdout, c.Phases())
	}
	reg := tr.Registry()
	histNames := reg.HistogramNames()
	isHistKey := func(name string) bool {
		for _, h := range histNames {
			if strings.HasPrefix(name, h+".") {
				return true
			}
		}
		return false
	}
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		if isHistKey(name) {
			continue
		}
		names = append(names, name)
	}
	if len(names) > 0 {
		sort.Strings(names)
		fmt.Println("--- counters ---")
		for _, name := range names {
			fmt.Printf("  %-32s %d\n", name, snap[name])
		}
	}
	if len(histNames) > 0 {
		fmt.Println("--- histograms ---")
		for _, name := range histNames {
			h := reg.Histogram(name)
			fmt.Printf("  %-32s count=%d sum=%d p50≤%d p95≤%d p99≤%d max≤%d\n",
				name, h.Count(), h.Sum(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
		}
	}
}
