package main

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multidiag/internal/trace"
)

// fixtureRecord builds a deterministic two-level tree: a 100ms request
// with an 80ms execute holding a 60ms scoring pass of two workers (40ms
// and 20ms busy, with cone-cache probe counts).
func fixtureRecord() *trace.TreeRecord {
	ms := func(n int64) int64 { return n * 1e6 }
	return &trace.TreeRecord{
		Schema:  trace.Schema,
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
		Flags:   []string{"timeout"},
		Spans: []trace.SpanRecord{
			{SpanID: "aaaaaaaaaaaaaaaa", Name: "serve.request", StartNS: 0, DurNS: ms(100)},
			{SpanID: "bbbbbbbbbbbbbbbb", ParentID: "aaaaaaaaaaaaaaaa", Name: "serve.queue", StartNS: ms(1), DurNS: ms(10)},
			{SpanID: "cccccccccccccccc", ParentID: "aaaaaaaaaaaaaaaa", Name: "serve.execute", StartNS: ms(11), DurNS: ms(80)},
			{SpanID: "dddddddddddddddd", ParentID: "cccccccccccccccc", Name: "fsim.parallel", StartNS: ms(12), DurNS: ms(60)},
			{SpanID: "eeeeeeeeeeeeeeee", ParentID: "dddddddddddddddd", Name: "fsim.worker", StartNS: ms(12), DurNS: ms(40),
				Attrs: map[string]any{"cache_hits": float64(90), "cache_misses": float64(10)}},
			{SpanID: "ffffffffffffffff", ParentID: "dddddddddddddddd", Name: "fsim.worker", StartNS: ms(12), DurNS: ms(20),
				Attrs: map[string]any{"cache_hits": float64(50), "cache_misses": float64(50)}},
		},
	}
}

func TestPhaseSelfTime(t *testing.T) {
	tr := index(fixtureRecord())
	root := tr.root
	if root == nil || root.Name != "serve.request" {
		t.Fatalf("root = %+v, want serve.request", root)
	}
	// request self = 100 − (10 + 80) = 10ms
	if got := tr.selfNS(root); got != 10*1e6 {
		t.Errorf("root self = %d, want 10ms", got)
	}
	// parallel self = 60 − (40 + 20) = 0
	for i := range tr.rec.Spans {
		if tr.rec.Spans[i].Name == "fsim.parallel" {
			if got := tr.selfNS(&tr.rec.Spans[i]); got != 0 {
				t.Errorf("fsim.parallel self = %d, want 0", got)
			}
		}
	}
}

func TestWorkerStats(t *testing.T) {
	_, ws, totalRoot := analyze([]*tree{index(fixtureRecord())})
	if totalRoot != 100*1e6 {
		t.Errorf("total root = %d, want 100ms", totalRoot)
	}
	if ws.passes != 1 || ws.workers != 2 {
		t.Fatalf("passes = %d workers = %d, want 1/2", ws.passes, ws.workers)
	}
	// busy 60ms of 120ms wall×workers → 50% utilization
	if ws.busyNS != 60*1e6 || ws.wallNS != 120*1e6 {
		t.Errorf("busy %d / wall %d, want 60ms / 120ms", ws.busyNS, ws.wallNS)
	}
	if ws.hits != 140 || ws.misses != 60 {
		t.Errorf("probes %d/%d, want 140 hits / 60 misses", ws.hits, ws.misses)
	}
	// miss-attributed: 40ms×10/100 + 20ms×50/100 = 4 + 10 = 14ms
	if ws.missBusyNS != 14*1e6 {
		t.Errorf("missBusyNS = %d, want 14ms", ws.missBusyNS)
	}
}

func TestCriticalPathDescendsLargestChild(t *testing.T) {
	tr := index(fixtureRecord())
	var names []string
	for _, sp := range tr.criticalPath(10) {
		names = append(names, sp.Name)
	}
	want := "serve.request serve.execute fsim.parallel fsim.worker"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("critical path = %q, want %q", got, want)
	}
}

func TestRenderReport(t *testing.T) {
	var b bytes.Buffer
	render(&b, []*trace.TreeRecord{fixtureRecord()}, 1, 10)
	out := b.String()
	for _, want := range []string{
		"1 traces, 6 spans",
		"flags: timeout×1",
		"phase attribution",
		"serve.request",
		"worker utilization: 50.0% busy",
		"cone cache: 200 probes, 30.00% miss",
		"critical path — trace 4bf92f3577b34da6a3ce929d0e0e4736",
		"fsim.worker",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestLoadTreesGzip: the analyzer reads its own wire format back through
// a gzip file, matching mdserve -trace-spans-out foo.jsonl.gz.
func TestLoadTreesGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "traces.jsonl.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if err := fixtureRecord().WriteJSONL(zw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := loadTrees([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("loaded %d records: %+v", len(recs), recs)
	}
}

// TestLoadTreesRejectsWrongSchema: corrupt or foreign JSONL fails loudly.
func TestLoadTreesRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(path, []byte(`{"schema":"nope/v9","trace_id":"x","spans":[]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrees([]string{path}); err == nil {
		t.Fatal("wrong schema loaded without error")
	}
}
