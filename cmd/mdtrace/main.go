// mdtrace analyzes captured request span trees — the mdtrace/v1 JSONL
// that mdserve writes to -trace-spans-out and serves at /debug/trace,
// and that mddiag -span-out emits for a CLI diagnosis — and renders
// critical-path and phase-attribution reports: where requests actually
// spend their time, layer by layer, from HTTP ingress through the core
// engine's phases down to the fault-parallel workers and their
// cone-cache probes.
//
// Usage:
//
//	mdtrace traces.jsonl.gz
//	curl -s localhost:8080/debug/trace | mdtrace
//	mdtrace -flag timeout -slowest 3 traces.jsonl
//
// The report has three parts:
//
//   - Phase attribution: per span name, how much total and SELF time
//     (duration minus child durations) the fleet of traces spent there,
//     as a share of total root time. Self time is where an optimization
//     actually lands.
//   - Worker utilization: for every fault-parallel scoring pass, the
//     share of (wall × workers) the workers were busy — the idle
//     remainder is coordination loss or load imbalance — plus the share
//     of worker busy time attributable to cone-cache misses.
//   - Critical path: for the slowest trace(s), the chain of largest
//     children from the root down, each step with its duration and share
//     of the root.
//
// Flags: -flag f keeps only traces carrying tail flag f (shed, timeout,
// panic, slow, sampled); -slowest N renders N critical paths (default 1);
// "-" or no file reads stdin; .gz inputs decompress transparently.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"multidiag/internal/trace"
)

func main() {
	var (
		flagFilter = flag.String("flag", "", "keep only traces carrying this tail flag (shed, timeout, panic, slow, sampled)")
		slowest    = flag.Int("slowest", 1, "render the critical path of the N slowest traces")
		pathDepth  = flag.Int("path-depth", 12, "max critical-path depth")
	)
	flag.Parse()
	recs, err := loadTrees(flag.Args())
	if err != nil {
		fatal(err)
	}
	if *flagFilter != "" {
		kept := recs[:0]
		for _, r := range recs {
			if r.HasFlag(*flagFilter) {
				kept = append(kept, r)
			}
		}
		recs = kept
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("no traces to analyze"))
	}
	render(os.Stdout, recs, *slowest, *pathDepth)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdtrace:", err)
	os.Exit(1)
}

// loadTrees reads every input (stdin for "-" or no args), decompressing
// .gz transparently.
func loadTrees(paths []string) ([]*trace.TreeRecord, error) {
	if len(paths) == 0 {
		paths = []string{"-"}
	}
	var out []*trace.TreeRecord
	for _, p := range paths {
		recs, err := loadFile(p)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

func loadFile(path string) ([]*trace.TreeRecord, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
		if strings.HasSuffix(path, ".gz") {
			zr, err := gzip.NewReader(f)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			defer zr.Close()
			r = zr
		}
	}
	recs, err := trace.ReadTrees(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// tree indexes one record for traversal.
type tree struct {
	rec      *trace.TreeRecord
	root     *trace.SpanRecord
	children map[string][]*trace.SpanRecord
	rootDur  int64
}

func index(rec *trace.TreeRecord) *tree {
	t := &tree{rec: rec, root: rec.Root(), children: make(map[string][]*trace.SpanRecord)}
	for i := range rec.Spans {
		sp := &rec.Spans[i]
		t.children[sp.ParentID] = append(t.children[sp.ParentID], sp)
	}
	if t.root != nil {
		t.rootDur = t.root.DurNS
	}
	return t
}

// selfNS is a span's self time: its duration minus its children's,
// clipped at zero (parallel children can sum past the parent's wall).
func (t *tree) selfNS(sp *trace.SpanRecord) int64 {
	self := sp.DurNS
	for _, c := range t.children[sp.SpanID] {
		self -= c.DurNS
	}
	if self < 0 {
		return 0
	}
	return self
}

// phaseStat aggregates one span name across every trace.
type phaseStat struct {
	name    string
	count   int
	totalNS int64
	selfNS  int64
}

// workerStats summarizes the fault-parallel scoring passes.
type workerStats struct {
	passes      int
	workers     int
	wallNS      int64 // Σ fsim.parallel durations × their worker counts
	busyNS      int64 // Σ fsim.worker durations
	hits        int64
	misses      int64
	missBusyNS  int64 // worker busy time attributed to cache misses
	probedBusy  int64 // busy time of workers that reported probe counts
	probedCount int
}

func attrInt(attrs map[string]any, key string) (int64, bool) {
	v, ok := attrs[key]
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case float64: // JSON numbers decode as float64
		return int64(n), true
	case int64:
		return int64(n), true
	}
	return 0, false
}

// analyze walks every tree once, filling the phase table and worker
// statistics.
func analyze(trees []*tree) (phases []*phaseStat, ws workerStats, totalRootNS int64) {
	byName := make(map[string]*phaseStat)
	for _, t := range trees {
		totalRootNS += t.rootDur
		for i := range t.rec.Spans {
			sp := &t.rec.Spans[i]
			ps := byName[sp.Name]
			if ps == nil {
				ps = &phaseStat{name: sp.Name}
				byName[sp.Name] = ps
			}
			ps.count++
			ps.totalNS += sp.DurNS
			ps.selfNS += t.selfNS(sp)

			if sp.Name == "fsim.parallel" {
				workers := t.children[sp.SpanID]
				n := 0
				for _, w := range workers {
					if w.Name != "fsim.worker" {
						continue
					}
					n++
					ws.busyNS += w.DurNS
					h, okH := attrInt(w.Attrs, "cache_hits")
					m, okM := attrInt(w.Attrs, "cache_misses")
					if okH || okM {
						ws.hits += h
						ws.misses += m
						ws.probedBusy += w.DurNS
						ws.probedCount++
						if h+m > 0 {
							ws.missBusyNS += w.DurNS * m / (h + m)
						}
					}
				}
				if n > 0 {
					ws.passes++
					ws.workers += n
					ws.wallNS += sp.DurNS * int64(n)
				}
			}
		}
	}
	phases = make([]*phaseStat, 0, len(byName))
	for _, ps := range byName {
		phases = append(phases, ps)
	}
	sort.Slice(phases, func(i, j int) bool {
		if phases[i].selfNS != phases[j].selfNS {
			return phases[i].selfNS > phases[j].selfNS
		}
		return phases[i].name < phases[j].name
	})
	return phases, ws, totalRootNS
}

// criticalPath descends from the root into the largest child at each
// level, up to depth steps.
func (t *tree) criticalPath(depth int) []*trace.SpanRecord {
	var path []*trace.SpanRecord
	sp := t.root
	for sp != nil && len(path) < depth {
		path = append(path, sp)
		var next *trace.SpanRecord
		for _, c := range t.children[sp.SpanID] {
			if next == nil || c.DurNS > next.DurNS {
				next = c
			}
		}
		sp = next
	}
	return path
}

func dur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// render writes the full report.
func render(w io.Writer, recs []*trace.TreeRecord, slowest, pathDepth int) {
	trees := make([]*tree, 0, len(recs))
	flagCounts := make(map[string]int)
	spans := 0
	for _, rec := range recs {
		trees = append(trees, index(rec))
		spans += len(rec.Spans)
		for _, f := range rec.Flags {
			flagCounts[f]++
		}
	}
	fmt.Fprintf(w, "mdtrace: %d traces, %d spans", len(trees), spans)
	if len(flagCounts) > 0 {
		names := make([]string, 0, len(flagCounts))
		for f := range flagCounts {
			names = append(names, f)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, f := range names {
			parts = append(parts, fmt.Sprintf("%s×%d", f, flagCounts[f]))
		}
		fmt.Fprintf(w, " (flags: %s)", strings.Join(parts, " "))
	}
	fmt.Fprintln(w)

	phases, ws, totalRootNS := analyze(trees)

	fmt.Fprintf(w, "\nphase attribution (self = time not in children; %% of %s total root time)\n", dur(totalRootNS))
	fmt.Fprintf(w, "  %-28s %6s %14s %14s %8s\n", "phase", "count", "total", "self", "self%")
	for _, ps := range phases {
		fmt.Fprintf(w, "  %-28s %6d %14s %14s %7.1f%%\n",
			ps.name, ps.count, dur(ps.totalNS), dur(ps.selfNS), pct(ps.selfNS, totalRootNS))
	}

	if ws.passes > 0 {
		util := pct(ws.busyNS, ws.wallNS)
		fmt.Fprintf(w, "\nworker utilization: %.1f%% busy across %d scoring passes (%d worker spans); idle/contention share %.1f%%\n",
			util, ws.passes, ws.workers, 100-util)
		if probes := ws.hits + ws.misses; probes > 0 {
			fmt.Fprintf(w, "cone cache: %d probes, %.2f%% miss; ~%s of worker time miss-attributed (%.1f%% of probed busy time)\n",
				probes, pct(ws.misses, probes), dur(ws.missBusyNS), pct(ws.missBusyNS, ws.probedBusy))
		}
	}

	// Slowest traces by root duration.
	order := make([]*tree, len(trees))
	copy(order, trees)
	sort.SliceStable(order, func(i, j int) bool { return order[i].rootDur > order[j].rootDur })
	if slowest > len(order) {
		slowest = len(order)
	}
	for i := 0; i < slowest; i++ {
		t := order[i]
		if t.root == nil {
			continue
		}
		flags := ""
		if len(t.rec.Flags) > 0 {
			flags = " flags: " + strings.Join(t.rec.Flags, ",")
		}
		fmt.Fprintf(w, "\ncritical path — trace %s (%s%s)\n", t.rec.TraceID, dur(t.rootDur), flags)
		for d, sp := range t.criticalPath(pathDepth) {
			mark := ""
			if sp.Unfinished {
				mark = " (unfinished)"
			}
			fmt.Fprintf(w, "  %s%s %s (%.1f%%)%s\n",
				strings.Repeat("  ", d), sp.Name, dur(sp.DurNS), pct(sp.DurNS, t.rootDur), mark)
		}
	}
}
