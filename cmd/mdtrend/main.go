// mdtrend compares a fresh campaign's quality records against the
// committed QUALITY_baseline.json, gating diagnostic-quality regressions
// the way benchdiff gates ns/op.
//
// Usage:
//
//	mdexp -quick -seeds 3 -only T3 -quality-out current.json
//	mdtrend compare QUALITY_baseline.json current.json
//	mdtrend compare QUALITY_baseline.json - < current.json
//	mdtrend compare base.json cur.json -acc-drop 0.02 -res-pct 25 -ms-pct 75 -fail
//	mdtrend compare-serve SERVE_baseline.json serve-current.json [-shed-inc frac] [-ms-pct pct] [-fail]
//	mdtrend compare-volume VOL_baseline.json summary.json [-dedupe-drop frac] [-unique-pct pct]
//
// compare prints a per-record delta table. A site-accuracy,
// region-accuracy or success-rate drop beyond -acc-drop is an error — a
// GitHub Actions `::error::` annotation inside workflows — and always
// exits non-zero: quality numbers are deterministic from the campaign
// seeds, so a drop is a semantic regression, not noise. Resolution growth
// beyond -res-pct and ms/diag growth beyond -ms-pct warn (`::warning::`);
// -fail upgrades warnings to a non-zero exit. Records present on only one
// side are reported but never fatal, so a baseline refresh and a new
// campaign can land in the same change.
//
// compare-serve does the same for mdserve's service records
// (-service-record-out): a shed-rate increase beyond -shed-inc or any
// handler panic is an error; a p95 service-latency increase beyond
// -ms-pct warns.
//
// compare-volume gates volume fleet summaries (mdvol -summary-out,
// GET /v1/volume/summary): on the pinned synthetic stream a dedupe-ratio
// drop, unique-syndrome growth or a defect-class distribution change is
// an error — the syndrome fingerprint or the classifier changed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multidiag/internal/qrec"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "compare":
		compareMain(os.Args[2:])
	case "compare-serve":
		compareServeMain(os.Args[2:])
	case "compare-volume":
		compareVolumeMain(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mdtrend compare <baseline.json> <current.json|-> [-acc-drop frac] [-res-pct pct] [-ms-pct pct] [-fail]")
	fmt.Fprintln(os.Stderr, "       mdtrend compare-serve <baseline.json> <current.json|-> [-shed-inc frac] [-ms-pct pct] [-fail]")
	fmt.Fprintln(os.Stderr, "       mdtrend compare-volume <baseline.json> <current.json|-> [-dedupe-drop frac] [-unique-pct pct]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdtrend:", err)
	os.Exit(1)
}

func compareMain(args []string) {
	th := qrec.DefaultThresholds()
	fs := flag.NewFlagSet("mdtrend compare", flag.ExitOnError)
	accDrop := fs.Float64("acc-drop", th.AccDrop, "absolute accuracy/success drop that is an error (exits non-zero)")
	resPct := fs.Float64("res-pct", th.ResPct, "resolution (candidate count) increase percentage that warns")
	msPct := fs.Float64("ms-pct", th.LatencyPct, "ms/diagnosis increase percentage that warns")
	failOnWarn := fs.Bool("fail", false, "exit non-zero on warnings too")
	paths := parsePaths(fs, args)
	base, err := qrec.LoadFile(paths[0])
	if err != nil {
		fatal(err)
	}
	cur, err := qrec.LoadFile(paths[1])
	if err != nil {
		fatal(err)
	}

	findings := qrec.Compare(os.Stdout, base, cur,
		qrec.Thresholds{AccDrop: *accDrop, ResPct: *resPct, LatencyPct: *msPct})
	report(findings, len(cur.Records), *failOnWarn)
}

// compareServeMain gates mdserve service records: shed rate and panics
// hard, service latency soft.
func compareServeMain(args []string) {
	th := qrec.DefaultServiceThresholds()
	fs := flag.NewFlagSet("mdtrend compare-serve", flag.ExitOnError)
	shedInc := fs.Float64("shed-inc", th.ShedInc, "absolute shed-rate increase that is an error (exits non-zero)")
	msPct := fs.Float64("ms-pct", th.LatencyPct, "service p95 latency increase percentage that warns")
	failOnWarn := fs.Bool("fail", false, "exit non-zero on warnings too")
	paths := parsePaths(fs, args)
	base, err := qrec.LoadServiceFile(paths[0])
	if err != nil {
		fatal(err)
	}
	cur, err := qrec.LoadServiceFile(paths[1])
	if err != nil {
		fatal(err)
	}

	findings := qrec.CompareService(os.Stdout, base, cur,
		qrec.ServiceThresholds{ShedInc: *shedInc, LatencyPct: *msPct})
	report(findings, len(cur.Records), *failOnWarn)
}

// compareVolumeMain gates volume fleet summaries: dedupe ratio, unique
// syndromes and the class distribution, all hard (deterministic on the
// pinned stream).
func compareVolumeMain(args []string) {
	th := qrec.DefaultVolumeThresholds()
	fs := flag.NewFlagSet("mdtrend compare-volume", flag.ExitOnError)
	dedupeDrop := fs.Float64("dedupe-drop", th.DedupeDrop, "absolute dedupe-ratio drop that is an error (exits non-zero)")
	uniquePct := fs.Float64("unique-pct", th.UniquePct, "unique-syndrome growth percentage that is an error")
	paths := parsePaths(fs, args)
	base, err := qrec.LoadVolumeSummary(paths[0])
	if err != nil {
		fatal(err)
	}
	cur, err := qrec.LoadVolumeSummary(paths[1])
	if err != nil {
		fatal(err)
	}

	findings := qrec.CompareVolume(os.Stdout, base, cur,
		qrec.VolumeThresholds{DedupeDrop: *dedupeDrop, UniquePct: *uniquePct})
	report(findings, 1, false)
}

// parsePaths implements the shared argument convention: positional args
// may precede flags (compare a.json b.json -fail), the benchdiff
// convention; a bare "-" is the stdin path, not a flag. Exactly two
// paths are required.
func parsePaths(fs *flag.FlagSet, args []string) []string {
	var paths []string
	rest := args
	for len(rest) > 0 && (rest[0] == "-" || !strings.HasPrefix(rest[0], "-")) {
		paths = append(paths, rest[0])
		rest = rest[1:]
	}
	fs.Parse(rest)
	paths = append(paths, fs.Args()...)
	if len(paths) != 2 {
		usage()
	}
	return paths
}

// report annotates every finding and exits non-zero on errors (or on
// warnings under -fail).
func report(findings []qrec.Finding, records int, failOnWarn bool) {
	errors, warnings := 0, 0
	for _, f := range findings {
		annotate(f.Level, f.Message)
		if f.Level == "error" {
			errors++
		} else {
			warnings++
		}
	}
	if errors == 0 && warnings == 0 {
		fmt.Printf("mdtrend: %d records within thresholds\n", records)
	}
	if errors > 0 || (warnings > 0 && failOnWarn) {
		os.Exit(1)
	}
}

// annotate prints a finding at the given level ("warning" or "error"),
// using the GitHub Actions annotation syntax when running inside a
// workflow so the step gets flagged in the UI.
func annotate(level, msg string) {
	if os.Getenv("GITHUB_ACTIONS") == "true" {
		fmt.Printf("::%s title=quality regression::%s\n", level, msg)
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %s\n", strings.ToUpper(level), msg)
}
