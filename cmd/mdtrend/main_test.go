package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"multidiag/internal/qrec"
)

func writeQuality(t *testing.T, path string, f *qrec.File) {
	t.Helper()
	if err := qrec.Write(path, f); err != nil {
		t.Fatal(err)
	}
}

func record(campaign string, site float64) qrec.Record {
	return qrec.Record{
		Campaign: campaign, Circuit: "b0300", Defects: 2, Method: "ours", Devices: 6,
		SiteAcc: site, RegionAcc: site, Success: site, Resolution: 4, MsPerDiag: 10,
	}
}

// TestCompareExitCodes builds the real binary and pins the acceptance
// contract: identical files exit 0; a seeded (corrupted) accuracy drop
// exits non-zero with an error annotation; warnings exit 0 without -fail.
func TestCompareExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "mdtrend")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	basePath := filepath.Join(dir, "base.json")
	writeQuality(t, basePath, &qrec.File{Schema: qrec.Schema, Records: []qrec.Record{
		record("T3/b0300/2", 1), record("T3/b0300/3", 0.9),
	}})

	run := func(curFile string, extra ...string) (string, string, error) {
		args := append([]string{"compare", basePath, curFile}, extra...)
		cmd := exec.Command(bin, args...)
		cmd.Env = append(os.Environ(), "GITHUB_ACTIONS=")
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		err := cmd.Run()
		return stdout.String(), stderr.String(), err
	}

	// Identical: exit 0, table on stdout.
	out, _, err := run(basePath)
	if err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "within thresholds") {
		t.Errorf("clean compare output:\n%s", out)
	}

	// Corrupt one accuracy record: must exit non-zero with an ERROR line.
	badPath := filepath.Join(dir, "bad.json")
	writeQuality(t, badPath, &qrec.File{Schema: qrec.Schema, Records: []qrec.Record{
		record("T3/b0300/2", 1), record("T3/b0300/3", 0.80),
	}})
	out, stderr, err := run(badPath)
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("corrupted baseline compare: err=%v\n%s%s", err, out, stderr)
	}
	if !strings.Contains(stderr, "ERROR") || !strings.Contains(stderr, "T3/b0300/3") {
		t.Errorf("missing error annotation on stderr:\n%s", stderr)
	}

	// Latency-only drift: warn, exit 0 without -fail, exit 1 with it.
	slow := record("T3/b0300/3", 0.9)
	slow.MsPerDiag = 100
	slowPath := filepath.Join(dir, "slow.json")
	writeQuality(t, slowPath, &qrec.File{Schema: qrec.Schema, Records: []qrec.Record{
		record("T3/b0300/2", 1), slow,
	}})
	if _, stderr, err := run(slowPath); err != nil {
		t.Fatalf("warning-only compare exited non-zero: %v\n%s", err, stderr)
	} else if !strings.Contains(stderr, "WARNING") {
		t.Errorf("missing warning annotation:\n%s", stderr)
	}
	if _, _, err := run(slowPath, "-fail"); err == nil {
		t.Error("-fail did not upgrade warnings to a non-zero exit")
	}

	// GitHub Actions mode: annotations go to stdout in ::error:: syntax.
	cmd := exec.Command(bin, "compare", basePath, badPath)
	cmd.Env = append(os.Environ(), "GITHUB_ACTIONS=true")
	var stdoutB bytes.Buffer
	cmd.Stdout = &stdoutB
	_ = cmd.Run()
	if !strings.Contains(stdoutB.String(), "::error title=quality regression::") {
		t.Errorf("missing ::error:: annotation:\n%s", stdoutB.String())
	}
}
