// mdcell runs the transistor-level intra-cell diagnosis extension on a
// library cell: it injects a chosen defect, derives the local failing and
// passing patterns, and prints the suspect lists with the transistor
// terminals to inspect in physical failure analysis.
//
// Usage:
//
//	mdcell -list
//	mdcell -cell AOI22X1 -defect stuck -node n1 -v 0
//	mdcell -cell ND2X1  -defect toff  -t N0
//	mdcell -cell MUX21X1 -defect bridge -node m -aggr sb
package main

import (
	"flag"
	"fmt"
	"os"

	"multidiag/internal/intracell"
	"multidiag/internal/logic"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list library cells")
		cell   = flag.String("cell", "", "cell name (see -list)")
		defect = flag.String("defect", "stuck", "defect kind: stuck|toff|ton|bridge")
		node   = flag.String("node", "", "defective node (stuck/bridge victim)")
		aggr   = flag.String("aggr", "", "bridge aggressor node")
		trName = flag.String("t", "", "transistor name (toff/ton)")
		val    = flag.Int("v", 0, "stuck value (0/1)")
	)
	flag.Parse()

	lib := intracell.Library()
	if *list {
		for _, c := range lib {
			fmt.Printf("%-10s %d inputs, %2d transistors\n", c.Name, len(c.Inputs), len(c.Transistors))
		}
		return
	}
	var c *intracell.Cell
	for _, lc := range lib {
		if lc.Name == *cell {
			c = lc
		}
	}
	if c == nil {
		fmt.Fprintf(os.Stderr, "mdcell: unknown cell %q (use -list)\n", *cell)
		os.Exit(2)
	}

	cfg := &intracell.SimConfig{}
	switch *defect {
	case "stuck":
		n := c.NodeByName(*node)
		if n < 0 {
			fatal(fmt.Errorf("unknown node %q", *node))
		}
		v := logic.Zero
		if *val != 0 {
			v = logic.One
		}
		cfg.ForcedNodes = map[intracell.NodeID]logic.Value{n: v}
	case "toff", "ton":
		ti := -1
		for i := range c.Transistors {
			if c.Transistors[i].Name == *trName {
				ti = i
			}
		}
		if ti < 0 {
			fatal(fmt.Errorf("unknown transistor %q", *trName))
		}
		if *defect == "toff" {
			cfg.StuckOff = map[int]bool{ti: true}
		} else {
			cfg.StuckOn = map[int]bool{ti: true}
		}
	case "bridge":
		v := c.NodeByName(*node)
		a := c.NodeByName(*aggr)
		if v < 0 || a < 0 {
			fatal(fmt.Errorf("bridge needs valid -node and -aggr"))
		}
		cfg.Bridges = []intracell.BridgePair{{Victim: v, Aggressor: a}}
	default:
		fatal(fmt.Errorf("unknown defect kind %q", *defect))
	}

	lfp, lpp, err := intracell.LocalPatterns(c, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cell %s: %d failing local patterns, %d passing\n", c.Name, len(lfp), len(lpp))
	if len(lfp) == 0 {
		fmt.Println("defect is benign (no observable failure); nothing to diagnose")
		return
	}
	d, err := intracell.Diagnose(c, lfp, lpp)
	if err != nil {
		fatal(err)
	}
	if d.DynamicOnly {
		fmt.Println("classification: dynamic (delay) faulty behaviour only")
	}
	fmt.Println("stuck suspects:")
	for _, s := range d.Stuck {
		fmt.Printf("  %s stuck-at-%v\n", c.Nodes[s.Node], s.Value)
	}
	fmt.Println("bridge suspects:")
	for _, b := range d.Bridges {
		fmt.Printf("  %s <- %s\n", c.Nodes[b.Victim], c.Nodes[b.Aggressor])
	}
	fmt.Println("delay suspects:")
	for _, n := range d.Delays {
		fmt.Printf("  %s\n", c.Nodes[n])
	}
	fmt.Println("transistor terminals to inspect:")
	for _, n := range d.SuspectNodes() {
		for _, tr := range d.TransistorSuspects[n] {
			fmt.Printf("  %s.%s (node %s)\n",
				c.Transistors[tr.Transistor].Name, tr.Terminal, c.Nodes[n])
		}
	}
	fmt.Printf("resolution: %d suspects\n", d.Resolution())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdcell:", err)
	os.Exit(1)
}
