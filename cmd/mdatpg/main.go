// mdatpg generates stuck-at test patterns for a .bench netlist using the
// random-plus-PODEM flow and writes them one per line.
//
// Usage:
//
//	mdatpg -c circuit.bench -o patterns.txt -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"multidiag/internal/atpg"
	"multidiag/internal/cio"
	"multidiag/internal/tester"
)

func main() {
	var (
		circ = flag.String("c", "", "circuit .bench file (required)")
		out  = flag.String("o", "", "output pattern file (default stdout)")
		seed = flag.Int64("seed", 1, "random-phase seed")
		scan = flag.Bool("scan", false, "treat DFFs as scan cells (full-scan conversion)")
	)
	flag.Parse()
	if *circ == "" {
		fmt.Fprintln(os.Stderr, "mdatpg: -c is required")
		os.Exit(2)
	}
	c, ffs := cio.MustLoad("mdatpg", *circ, *scan)
	if ffs > 0 {
		fmt.Fprintf(os.Stderr, "mdatpg: converted %d flip-flops to scan\n", ffs)
	}
	res, err := atpg.Generate(c, atpg.Config{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		w = of
	}
	if err := tester.WritePatterns(w, res.Patterns); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mdatpg: %d patterns, %.2f%% stuck-at coverage (%d untestable, %d aborted)\n",
		len(res.Patterns), 100*res.Coverage(), len(res.Untestable), len(res.Aborted))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdatpg:", err)
	os.Exit(1)
}
