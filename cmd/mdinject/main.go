// mdinject samples random physical defects, injects them into a circuit,
// applies a test set and writes the resulting tester datalog. The injected
// ground truth is printed to stderr so experiment scripts can score
// diagnosis results.
//
// Usage:
//
//	mdinject -c circuit.bench -p patterns.txt -n 3 -seed 42 -o device.datalog
package main

import (
	"flag"
	"fmt"
	"os"

	"multidiag/internal/cio"
	"multidiag/internal/defect"
	"multidiag/internal/netlist"
	"multidiag/internal/tester"
)

func main() {
	var (
		circ     = flag.String("c", "", "circuit .bench file (required)")
		pfile    = flag.String("p", "", "pattern file (required)")
		n        = flag.Int("n", 1, "number of simultaneous defects")
		seed     = flag.Int64("seed", 1, "sampling seed")
		out      = flag.String("o", "", "datalog output (default stdout)")
		maxFails = flag.Int("maxfails", 0, "tester fail-memory limit (0 = unlimited)")
	)
	flag.Parse()
	if *circ == "" || *pfile == "" {
		fmt.Fprintln(os.Stderr, "mdinject: -c and -p are required")
		os.Exit(2)
	}
	c, _ := cio.MustLoad("mdinject", *circ, false)
	pf, err := os.Open(*pfile)
	if err != nil {
		fatal(err)
	}
	pats, err := tester.ReadPatterns(pf)
	pf.Close()
	if err != nil {
		fatal(err)
	}

	// Resample on the rare composed-bridge cycle until injection succeeds.
	var (
		ds  []defect.Defect
		dev *netlist.Circuit
	)
	for s := *seed; ; s++ {
		ds, err = defect.Sample(c, defect.CampaignConfig{Seed: s, NumDefects: *n})
		if err != nil {
			fatal(err)
		}
		dev, err = defect.Inject(c, ds)
		if err == nil {
			break
		}
		if s-*seed > 100 {
			fatal(fmt.Errorf("cannot inject after 100 resamples: %v", err))
		}
	}
	log, err := tester.ApplyTest(c, dev, pats)
	if err != nil {
		fatal(err)
	}
	if *maxFails > 0 {
		log = log.Truncate(*maxFails)
	}
	w := os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		w = of
	}
	if err := tester.WriteDatalog(w, log); err != nil {
		fatal(err)
	}
	for _, d := range ds {
		fmt.Fprintf(os.Stderr, "mdinject: ground truth: %s\n", d.Describe(c))
	}
	fmt.Fprintf(os.Stderr, "mdinject: %d failing patterns, %d fail bits\n",
		len(log.FailingPatterns()), log.NumFailBits())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdinject:", err)
	os.Exit(1)
}
