// benchdiff turns `go test -bench` text output into a committed JSON
// baseline and compares later runs against it, warning on regressions.
//
// Usage:
//
//	go test -bench BenchmarkDiagnose -benchmem ./internal/core | benchdiff parse -o BENCH_diag.json
//	go test -bench BenchmarkDiagnose -benchmem ./internal/core | benchdiff parse | benchdiff compare BENCH_diag.json -
//	benchdiff compare BENCH_diag.json current.json -threshold 20 -fail
//	benchdiff compare BENCH_diag.json current.json -threshold 20 -fail-threshold 35
//	benchdiff speedup current.json -base BenchmarkDiagnoseScaling/j1 -target BenchmarkDiagnoseScaling/j8 -min 2.5
//
// parse reads benchmark result lines from stdin and writes one JSON object
// keyed by benchmark name (the -N GOMAXPROCS suffix stripped, so baselines
// transfer between machines with different core counts).
//
// compare prints a per-benchmark delta table. A ns/op regression beyond
// -threshold prints a warning — as a GitHub Actions `::warning::`
// annotation when running in Actions — and, with -fail, exits non-zero;
// a regression beyond -fail-threshold (when set) is an `::error::` and
// always exits non-zero, which is the CI gate: moderate drift warns,
// severe drift fails. Benchmarks present on only one side are reported
// but by default never fatal, so a baseline refresh and a new benchmark
// can land in the same change; a baseline entry missing from the current
// run still prints a `::warning::` so a silently dropped benchmark never
// passes unnoticed. With -missing-fatal that warning becomes an
// `::error::` and the exit is non-zero — the nightly gate, where the
// full suite runs and a vanished benchmark means lost coverage, not a
// rename in flight.
//
// speedup gates a scaling matrix: it reads one parsed result file and
// fails unless base ns/op ÷ target ns/op meets -min. This is the CI
// parallel-efficiency gate — run the scaling sub-benchmarks, parse, then
// assert the j8 configuration actually beats j1.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's parsed result.
type Bench struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// File is the JSON baseline layout.
type File struct {
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		parseMain(os.Args[2:])
	case "compare":
		compareMain(os.Args[2:])
	case "speedup":
		speedupMain(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchdiff parse [-o file] | benchdiff compare <baseline.json> <current.json|-> [-threshold pct] [-fail] | benchdiff speedup <current.json|-> -base <name> -target <name> -min <ratio>")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

func parseMain(args []string) {
	fs := flag.NewFlagSet("benchdiff parse", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	f, err := ParseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(f.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}
	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := w.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: wrote %d benchmarks to %s\n", len(f.Benchmarks), *out)
	}
}

// ParseBench extracts benchmark result lines from `go test -bench` output.
// A result line is "BenchmarkName[-P] <iters> <value> ns/op [<value> B/op
// <value> allocs/op ...]"; everything else (pass/fail chatter, pkg lines)
// is ignored. Repeated runs of one name keep the last result.
func ParseBench(r io.Reader) (*File, error) {
	f := &File{Benchmarks: map[string]Bench{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{Iterations: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
				ok = true
			case "B/op":
				b.BytesPerOp = int64(v)
			case "allocs/op":
				b.AllocsPerOp = int64(v)
			}
		}
		if ok {
			f.Benchmarks[stripProcs(fields[0])] = b
		}
	}
	return f, sc.Err()
}

// stripProcs removes the -<GOMAXPROCS> suffix go test appends to
// benchmark names ("BenchmarkDiagnose-8" → "BenchmarkDiagnose").
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func compareMain(args []string) {
	fs := flag.NewFlagSet("benchdiff compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 20, "ns/op regression percentage that triggers a warning")
	failThreshold := fs.Float64("fail-threshold", 0, "ns/op regression percentage that is an error (0 = disabled); exits non-zero when exceeded")
	allocThreshold := fs.Float64("alloc-threshold", 20, "allocs_per_op / bytes_per_op regression percentage that triggers a warning (checked only when both sides recorded -benchmem numbers)")
	allocFailThreshold := fs.Float64("alloc-fail-threshold", 0, "allocs_per_op / bytes_per_op regression percentage that is an error (0 = disabled); exits non-zero when exceeded")
	failOnRegress := fs.Bool("fail", false, "exit non-zero when a regression exceeds the warning threshold")
	missingFatal := fs.Bool("missing-fatal", false, "treat a baseline benchmark missing from the current run as an error (nightly mode)")
	// Positional args may precede flags (compare a.json b.json -fail).
	var paths []string
	rest := args
	for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		paths = append(paths, rest[0])
		rest = rest[1:]
	}
	fs.Parse(rest)
	paths = append(paths, fs.Args()...)
	if len(paths) != 2 {
		usage()
	}
	base, err := loadFile(paths[0])
	if err != nil {
		fatal(err)
	}
	cur, err := loadFile(paths[1])
	if err != nil {
		fatal(err)
	}

	warnings, failures := compareFiles(os.Stdout, base, cur, *threshold, *failThreshold, *allocThreshold, *allocFailThreshold, *missingFatal)
	if failures > 0 || (warnings > 0 && *failOnRegress) {
		os.Exit(1)
	}
}

// compareFiles prints the per-benchmark delta table and returns how many
// regressions crossed the warning thresholds and the (optional,
// 0-disabled) failure thresholds. ns/op deltas gate on warnTh/failTh;
// allocs_per_op and bytes_per_op gate on allocWarnTh/allocFailTh, checked
// only when both sides recorded a nonzero value (a baseline captured
// without -benchmem never trips the alloc gate). A delta beyond a fail
// threshold counts only as a failure; between the warn and fail
// thresholds it is a warning. Benchmarks present on only one side are
// reported but by default never fatal, so a baseline refresh and a new
// benchmark can land in the same change; missingFatal promotes a baseline
// entry absent from the current run to a failure.
func compareFiles(w io.Writer, base, cur *File, warnTh, failTh, allocWarnTh, allocFailTh float64, missingFatal bool) (warnings, failures int) {
	names := map[string]bool{}
	for n := range base.Benchmarks {
		names[n] = true
	}
	for n := range cur.Benchmarks {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	fmt.Fprintf(w, "%-34s %14s %14s %9s\n", "benchmark", "base ns/op", "cur ns/op", "delta")
	for _, n := range sorted {
		b, inBase := base.Benchmarks[n]
		c, inCur := cur.Benchmarks[n]
		switch {
		case !inCur:
			fmt.Fprintf(w, "%-34s %14.0f %14s %9s\n", n, b.NsPerOp, "—", "gone")
			// Not fatal by default (a baseline refresh may land with a
			// rename), but never silent: a benchmark that stops running
			// would otherwise pass every gate forever. Nightly runs pass
			// -missing-fatal and fail instead.
			if missingFatal {
				failures++
				annotate("error", fmt.Sprintf("baseline benchmark %s missing from current run", n))
			} else {
				annotate("warning", fmt.Sprintf("baseline benchmark %s missing from current run", n))
			}
		case !inBase:
			fmt.Fprintf(w, "%-34s %14s %14.0f %9s\n", n, "—", c.NsPerOp, "new")
		default:
			delta := 0.0
			if b.NsPerOp > 0 {
				delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			}
			fmt.Fprintf(w, "%-34s %14.0f %14.0f %+8.1f%%\n", n, b.NsPerOp, c.NsPerOp, delta)
			switch {
			case failTh > 0 && delta > failTh:
				failures++
				annotate("error", fmt.Sprintf("%s regressed %.1f%% (%.0f → %.0f ns/op, failure threshold %.0f%%)",
					n, delta, b.NsPerOp, c.NsPerOp, failTh))
			case delta > warnTh:
				warnings++
				annotate("warning", fmt.Sprintf("%s regressed %.1f%% (%.0f → %.0f ns/op, threshold %.0f%%)",
					n, delta, b.NsPerOp, c.NsPerOp, warnTh))
			}
			wAlloc, fAlloc := gateAllocMetric(n, "allocs/op", b.AllocsPerOp, c.AllocsPerOp, allocWarnTh, allocFailTh)
			warnings, failures = warnings+wAlloc, failures+fAlloc
			wBytes, fBytes := gateAllocMetric(n, "B/op", b.BytesPerOp, c.BytesPerOp, allocWarnTh, allocFailTh)
			warnings, failures = warnings+wBytes, failures+fBytes
		}
	}
	return warnings, failures
}

// gateAllocMetric applies the alloc warn/fail thresholds to one -benchmem
// metric (allocs_per_op or bytes_per_op). Either side being zero means the
// metric was not recorded there, so nothing is gated.
func gateAllocMetric(name, unit string, base, cur int64, warnTh, failTh float64) (warnings, failures int) {
	if base <= 0 || cur <= 0 {
		return 0, 0
	}
	delta := float64(cur-base) / float64(base) * 100
	switch {
	case failTh > 0 && delta > failTh:
		annotate("error", fmt.Sprintf("%s regressed %.1f%% (%d → %d %s, failure threshold %.0f%%)",
			name, delta, base, cur, unit, failTh))
		return 0, 1
	case delta > warnTh:
		annotate("warning", fmt.Sprintf("%s regressed %.1f%% (%d → %d %s, threshold %.0f%%)",
			name, delta, base, cur, unit, warnTh))
		return 1, 0
	}
	return 0, 0
}

// speedupMain implements the `speedup` subcommand: assert that one
// benchmark configuration is at least -min times faster than another
// within a single parsed result file.
func speedupMain(args []string) {
	fs := flag.NewFlagSet("benchdiff speedup", flag.ExitOnError)
	baseName := fs.String("base", "", "reference benchmark name (e.g. BenchmarkDiagnoseScaling/j1)")
	targetName := fs.String("target", "", "benchmark that must be faster (e.g. BenchmarkDiagnoseScaling/j8)")
	min := fs.Float64("min", 1, "minimum required speedup ratio (base ns/op ÷ target ns/op)")
	var paths []string
	rest := args
	for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		paths = append(paths, rest[0])
		rest = rest[1:]
	}
	fs.Parse(rest)
	paths = append(paths, fs.Args()...)
	if len(paths) != 1 || *baseName == "" || *targetName == "" {
		usage()
	}
	cur, err := loadFile(paths[0])
	if err != nil {
		fatal(err)
	}
	ratio, err := SpeedupGate(os.Stdout, cur, *baseName, *targetName, *min)
	if err != nil {
		fatal(err)
	}
	if ratio < *min {
		os.Exit(1)
	}
}

// SpeedupGate computes base ns/op ÷ target ns/op, prints the verdict, and
// emits an error annotation when the ratio misses min. It returns an error
// (not a failed gate) when either benchmark is absent or has no timing —
// a scaling matrix that silently stopped producing one of its points must
// fail loudly, not pass vacuously.
func SpeedupGate(w io.Writer, f *File, baseName, targetName string, min float64) (float64, error) {
	base, ok := f.Benchmarks[baseName]
	if !ok || base.NsPerOp <= 0 {
		return 0, fmt.Errorf("speedup: benchmark %q missing from results", baseName)
	}
	target, ok := f.Benchmarks[targetName]
	if !ok || target.NsPerOp <= 0 {
		return 0, fmt.Errorf("speedup: benchmark %q missing from results", targetName)
	}
	ratio := base.NsPerOp / target.NsPerOp
	fmt.Fprintf(w, "speedup %s vs %s: %.2fx (minimum %.2fx)\n", targetName, baseName, ratio, min)
	if ratio < min {
		annotate("error", fmt.Sprintf("%s is only %.2fx faster than %s (%.0f → %.0f ns/op), minimum %.2fx",
			targetName, ratio, baseName, base.NsPerOp, target.NsPerOp, min))
	}
	return ratio, nil
}

// annotate prints a regression annotation at the given level ("warning" or
// "error"), using the GitHub Actions annotation syntax when running inside
// a workflow so the step gets flagged in the UI.
func annotate(level, msg string) {
	if os.Getenv("GITHUB_ACTIONS") == "true" {
		fmt.Printf("::%s title=benchmark regression::%s\n", level, msg)
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %s\n", strings.ToUpper(level), msg)
}

// loadFile reads a baseline JSON file; "-" reads stdin (so a fresh parse
// can pipe straight into compare).
func loadFile(path string) (*File, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var out File
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if out.Benchmarks == nil {
		return nil, fmt.Errorf("%s: no benchmarks key", path)
	}
	return &out, nil
}
