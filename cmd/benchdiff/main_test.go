package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: multidiag/internal/core
cpu: generic
BenchmarkDiagnose-8            	      92	  12715258 ns/op	 4821342 B/op	   22841 allocs/op
BenchmarkDiagnoseTraced-8      	      90	  12903991 ns/op	 4830122 B/op	   22913 allocs/op
BenchmarkDiagnoseExplained-8   	      85	  13514210 ns/op	 5721033 B/op	   31277 allocs/op
PASS
ok  	multidiag/internal/core	5.023s
`

func TestParseBench(t *testing.T) {
	f, err := ParseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks: %v", len(f.Benchmarks), f.Benchmarks)
	}
	b, ok := f.Benchmarks["BenchmarkDiagnose"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", f.Benchmarks)
	}
	if b.Iterations != 92 || b.NsPerOp != 12715258 || b.BytesPerOp != 4821342 || b.AllocsPerOp != 22841 {
		t.Fatalf("parsed %+v", b)
	}
}

func TestParseBenchIgnoresChatter(t *testing.T) {
	f, err := ParseBench(strings.NewReader("PASS\nok x 1s\nBenchmarkBroken notanumber 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 0 {
		t.Fatalf("chatter parsed as benchmarks: %v", f.Benchmarks)
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkDiagnose-8":      "BenchmarkDiagnose",
		"BenchmarkDiagnose-128":    "BenchmarkDiagnose",
		"BenchmarkDiagnose":        "BenchmarkDiagnose",
		"BenchmarkSpan/sub-case-4": "BenchmarkSpan/sub-case",
		"BenchmarkOdd-name":        "BenchmarkOdd-name",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareFilesThresholds(t *testing.T) {
	base := &File{Benchmarks: map[string]Bench{
		"BenchmarkA":    {NsPerOp: 100},
		"BenchmarkB":    {NsPerOp: 100},
		"BenchmarkC":    {NsPerOp: 100},
		"BenchmarkGone": {NsPerOp: 100},
	}}
	cur := &File{Benchmarks: map[string]Bench{
		"BenchmarkA":   {NsPerOp: 105}, // ok
		"BenchmarkB":   {NsPerOp: 128}, // warning (>20)
		"BenchmarkC":   {NsPerOp: 150}, // failure (>35)
		"BenchmarkNew": {NsPerOp: 42},
	}}
	var out strings.Builder
	warnings, failures := compareFiles(&out, base, cur, 20, 35, 20, 0, false)
	if warnings != 1 || failures != 1 {
		t.Fatalf("warnings=%d failures=%d, want 1/1\n%s", warnings, failures, out.String())
	}
	for _, want := range []string{"gone", "new", "+28.0%", "+50.0%"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, out.String())
		}
	}
}

func TestCompareFilesFailThresholdDisabled(t *testing.T) {
	base := &File{Benchmarks: map[string]Bench{"BenchmarkC": {NsPerOp: 100}}}
	cur := &File{Benchmarks: map[string]Bench{"BenchmarkC": {NsPerOp: 200}}}
	var out strings.Builder
	warnings, failures := compareFiles(&out, base, cur, 20, 0, 20, 0, false)
	if warnings != 1 || failures != 0 {
		t.Fatalf("warnings=%d failures=%d, want 1/0 with fail-threshold disabled", warnings, failures)
	}
}

func TestCompareFilesAllocGate(t *testing.T) {
	base := &File{Benchmarks: map[string]Bench{
		"BenchmarkA": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkB": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkC": {NsPerOp: 100}, // no -benchmem numbers in the baseline
	}}
	cur := &File{Benchmarks: map[string]Bench{
		"BenchmarkA": {NsPerOp: 100, BytesPerOp: 1300, AllocsPerOp: 105}, // bytes warn (>25), allocs ok
		"BenchmarkB": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 200}, // allocs fail (>50)
		"BenchmarkC": {NsPerOp: 100, BytesPerOp: 9999, AllocsPerOp: 9999},
	}}
	var out strings.Builder
	warnings, failures := compareFiles(&out, base, cur, 20, 35, 25, 50, false)
	if warnings != 1 || failures != 1 {
		t.Fatalf("warnings=%d failures=%d, want 1/1 (bytes warn + allocs fail, missing baseline side skipped)\n%s",
			warnings, failures, out.String())
	}
}

func TestCompareFilesAllocFailThresholdDisabled(t *testing.T) {
	base := &File{Benchmarks: map[string]Bench{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 100}}}
	cur := &File{Benchmarks: map[string]Bench{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 300}}}
	var out strings.Builder
	warnings, failures := compareFiles(&out, base, cur, 20, 35, 25, 0, false)
	if warnings != 1 || failures != 0 {
		t.Fatalf("warnings=%d failures=%d, want 1/0 with alloc-fail-threshold disabled", warnings, failures)
	}
}

func TestSpeedupGate(t *testing.T) {
	f := &File{Benchmarks: map[string]Bench{
		"BenchmarkDiagnoseScaling/j1": {NsPerOp: 1000},
		"BenchmarkDiagnoseScaling/j8": {NsPerOp: 250},
	}}
	var out strings.Builder
	ratio, err := SpeedupGate(&out, f, "BenchmarkDiagnoseScaling/j1", "BenchmarkDiagnoseScaling/j8", 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 4 {
		t.Fatalf("ratio = %v, want 4", ratio)
	}
	if !strings.Contains(out.String(), "4.00x") {
		t.Fatalf("verdict line missing ratio:\n%s", out.String())
	}
}

func TestSpeedupGateBelowMinimum(t *testing.T) {
	f := &File{Benchmarks: map[string]Bench{
		"BenchmarkDiagnoseScaling/j1": {NsPerOp: 1000},
		"BenchmarkDiagnoseScaling/j8": {NsPerOp: 900},
	}}
	var out strings.Builder
	ratio, err := SpeedupGate(&out, f, "BenchmarkDiagnoseScaling/j1", "BenchmarkDiagnoseScaling/j8", 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if ratio >= 2.5 {
		t.Fatalf("ratio = %v, expected below the 2.5 gate", ratio)
	}
}

func TestSpeedupGateMissingBenchmark(t *testing.T) {
	f := &File{Benchmarks: map[string]Bench{
		"BenchmarkDiagnoseScaling/j1": {NsPerOp: 1000},
	}}
	var out strings.Builder
	if _, err := SpeedupGate(&out, f, "BenchmarkDiagnoseScaling/j1", "BenchmarkDiagnoseScaling/j8", 2.5); err == nil {
		t.Fatal("missing target benchmark must be an error, not a vacuous pass")
	}
	if _, err := SpeedupGate(&out, f, "BenchmarkDiagnoseScaling/j0", "BenchmarkDiagnoseScaling/j1", 2.5); err == nil {
		t.Fatal("missing base benchmark must be an error, not a vacuous pass")
	}
	// A benchmark parsed without a timing (ns/op 0) is as absent as a
	// missing key.
	f.Benchmarks["BenchmarkDiagnoseScaling/j8"] = Bench{}
	if _, err := SpeedupGate(&out, f, "BenchmarkDiagnoseScaling/j1", "BenchmarkDiagnoseScaling/j8", 2.5); err == nil {
		t.Fatal("zero-timing benchmark must be an error")
	}
}

func TestCompareFilesGoneWarns(t *testing.T) {
	base := &File{Benchmarks: map[string]Bench{"BenchmarkGone": {NsPerOp: 100}}}
	cur := &File{Benchmarks: map[string]Bench{}}
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	var table strings.Builder
	warnings, failures := compareFiles(&table, base, cur, 20, 35, 20, 35, false)
	w.Close()
	os.Stderr = old
	captured, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if warnings != 0 || failures != 0 {
		t.Fatalf("gone benchmark must stay non-fatal, got warnings=%d failures=%d", warnings, failures)
	}
	if !strings.Contains(string(captured), "missing from current run") {
		t.Fatalf("gone benchmark produced no warning annotation; stderr:\n%s", captured)
	}
}

func TestCompareFilesMissingFatal(t *testing.T) {
	base := &File{Benchmarks: map[string]Bench{
		"BenchmarkGone": {NsPerOp: 100},
		"BenchmarkKept": {NsPerOp: 100},
	}}
	cur := &File{Benchmarks: map[string]Bench{"BenchmarkKept": {NsPerOp: 100}}}
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	var table strings.Builder
	warnings, failures := compareFiles(&table, base, cur, 20, 35, 20, 35, true)
	w.Close()
	os.Stderr = old
	captured, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if warnings != 0 || failures != 1 {
		t.Fatalf("-missing-fatal gone benchmark: warnings=%d failures=%d, want 0/1", warnings, failures)
	}
	if !strings.Contains(string(captured), "ERROR") || !strings.Contains(string(captured), "missing from current run") {
		t.Fatalf("-missing-fatal gone benchmark produced no error annotation; stderr:\n%s", captured)
	}
}
