package main

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: multidiag/internal/core
cpu: generic
BenchmarkDiagnose-8            	      92	  12715258 ns/op	 4821342 B/op	   22841 allocs/op
BenchmarkDiagnoseTraced-8      	      90	  12903991 ns/op	 4830122 B/op	   22913 allocs/op
BenchmarkDiagnoseExplained-8   	      85	  13514210 ns/op	 5721033 B/op	   31277 allocs/op
PASS
ok  	multidiag/internal/core	5.023s
`

func TestParseBench(t *testing.T) {
	f, err := ParseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks: %v", len(f.Benchmarks), f.Benchmarks)
	}
	b, ok := f.Benchmarks["BenchmarkDiagnose"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", f.Benchmarks)
	}
	if b.Iterations != 92 || b.NsPerOp != 12715258 || b.BytesPerOp != 4821342 || b.AllocsPerOp != 22841 {
		t.Fatalf("parsed %+v", b)
	}
}

func TestParseBenchIgnoresChatter(t *testing.T) {
	f, err := ParseBench(strings.NewReader("PASS\nok x 1s\nBenchmarkBroken notanumber 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 0 {
		t.Fatalf("chatter parsed as benchmarks: %v", f.Benchmarks)
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkDiagnose-8":      "BenchmarkDiagnose",
		"BenchmarkDiagnose-128":    "BenchmarkDiagnose",
		"BenchmarkDiagnose":        "BenchmarkDiagnose",
		"BenchmarkSpan/sub-case-4": "BenchmarkSpan/sub-case",
		"BenchmarkOdd-name":        "BenchmarkOdd-name",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
