// mdvol is the volume-diagnosis CLI: it streams a JSONL datalog stream
// (one tested device per line — see internal/volume.Record) through the
// syndrome-fingerprint dedupe front into the parallel diagnosis engine,
// and emits the deterministic fleet aggregate (per-site Pareto tables,
// defect-class trends, dedupe-ratio stats) plus, optionally, one report
// line per device in input order.
//
// Usage:
//
//	mdgen -datalogs 10000 -workload b0300 -repeat 0.9 -o datalogs.jsonl.gz
//	mdvol -in datalogs.jsonl.gz -workload b0300 -j 8 \
//	      -reports-out reports.jsonl.gz -summary-out summary.json
//
// Memory stays bounded on arbitrarily long streams: the reader blocks
// when the worker pool is saturated (the CLI's backpressure), and only a
// window of devices is in flight at once. Per-device reports are
// byte-identical to running the engine on each datalog individually —
// cache hit or miss, at any -j — and the summary is byte-identical
// across runs and worker counts.
package main

import (
	"compress/gzip"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"multidiag/internal/cio"
	"multidiag/internal/exp"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/prof"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
	"multidiag/internal/volume"
)

func main() {
	var (
		in          = flag.String("in", "", "datalog stream to ingest: JSONL path (.gz transparently decompressed), or - for stdin")
		workload    = flag.String("workload", "", "workload: a built-in name (c17, add16, b0300, …) or name=circuit.bench:patterns.txt")
		jobs        = flag.Int("j", 0, "concurrent diagnosis workers (0 = GOMAXPROCS)")
		cacheCap    = flag.Int("cache", 0, "fingerprint cache entries (0 = 16k default, -1 disables dedupe)")
		top         = flag.Int("top", 10, "ranked-candidate tail bound per report")
		trendBucket = flag.Int("trend-bucket", volume.DefaultTrendBucket, "trend granularity: devices per bucket (seconds per bucket when records carry timestamps)")
		paretoTop   = flag.Int("pareto-top", volume.DefaultParetoTop, "suspects per site in the Pareto tables")
		reportsOut  = flag.String("reports-out", "", "write one report line per device (input order) to `file` (.gz compresses)")
		summaryOut  = flag.String("summary-out", "", "write the fleet aggregate JSON to `file` (default stdout)")
		verbose     = flag.Bool("v", false, "log ingest statistics to stderr")
	)
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	var profFlags prof.Flags
	profFlags.Register(flag.CommandLine)
	flag.Parse()
	if *in == "" || *workload == "" {
		fmt.Fprintln(os.Stderr, "mdvol: -in and -workload are required")
		os.Exit(2)
	}
	if err := run(obsFlags, profFlags, *in, *workload, *jobs, *cacheCap, *top, *trendBucket, *paretoTop, *reportsOut, *summaryOut, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "mdvol:", err)
		os.Exit(1)
	}
}

// run is the CLI body; it returns instead of exiting so deferred sink
// closes always execute (a .gz reports file must get its trailer even on
// a mid-stream error).
func run(obsFlags obs.Flags, profFlags prof.Flags, in, workloadSpec string, jobs, cacheCap, top, trendBucket, paretoTop int, reportsOut, summaryOut string, verbose bool) (err error) {
	tr, finishObs, err := obsFlags.Setup("mdvol")
	if err != nil {
		return err
	}
	defer func() {
		if e := finishObs(); err == nil {
			err = e
		}
	}()
	finishProf, err := profFlags.Setup(tr.Registry())
	if err != nil {
		return err
	}
	defer func() {
		if e := finishProf(); err == nil {
			err = e
		}
	}()

	name, c, pats, err := resolveWorkload(workloadSpec)
	if err != nil {
		return err
	}

	var reports io.Writer
	if reportsOut != "" {
		sink, serr := obs.CreateSink(reportsOut)
		if serr != nil {
			return serr
		}
		defer func() {
			if cerr := sink.Close(); err == nil {
				err = cerr
			}
		}()
		reports = sink
	}

	ing, err := volume.NewIngester(volume.IngestConfig{
		Workload:    name,
		Circuit:     c,
		Patterns:    pats,
		Workers:     jobs,
		CacheCap:    cacheCap,
		Top:         top,
		TrendBucket: trendBucket,
		ParetoTop:   paretoTop,
		Trace:       tr,
		Reports:     reports,
	})
	if err != nil {
		return err
	}

	stream, closeIn, err := openStream(in)
	if err != nil {
		return err
	}
	defer closeIn()

	start := time.Now()
	summary, err := ing.Run(context.Background(), volume.NewRecordReader(stream))
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if verbose {
		reg := tr.Registry()
		fmt.Fprintf(os.Stderr, "mdvol: %d devices (%d failing), %d unique syndromes, dedupe ratio %.3f\n",
			summary.Devices, summary.Failing, summary.UniqueSyndromes, summary.DedupeRatio)
		fmt.Fprintf(os.Stderr, "mdvol: %d engine runs, %d deduped (%d coalesced), cache %d hits / %d misses / %d evictions\n",
			reg.Counter("volume.diagnosed").Value(), reg.Counter("volume.deduped").Value(),
			reg.Counter("volume.coalesced").Value(), reg.Counter("volume.cache_hits").Value(),
			reg.Counter("volume.cache_misses").Value(), reg.Counter("volume.cache_evictions").Value())
		rate := float64(summary.Devices) / elapsed.Seconds()
		fmt.Fprintf(os.Stderr, "mdvol: %.1f devices/s over %v\n", rate, elapsed.Round(time.Millisecond))
	}

	if summaryOut != "" {
		f, cerr := os.Create(summaryOut)
		if cerr != nil {
			return cerr
		}
		werr := volume.WriteSummary(f, summary)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		return werr
	}
	return volume.WriteSummary(os.Stdout, summary)
}

// openStream opens the input path: stdin for "-", transparently
// decompressing .gz files.
func openStream(path string) (io.Reader, func() error, error) {
	if path == "-" {
		return os.Stdin, func() error { return nil }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, f.Close, nil
	}
	gz, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return gz, func() error {
		gerr := gz.Close()
		ferr := f.Close()
		if gerr != nil {
			return gerr
		}
		return ferr
	}, nil
}

// resolveWorkload parses the -workload value: a bare built-in name from
// the experiment suite's registry, or name=circuit.bench:patterns.txt
// loading external files (the mdserve convention).
func resolveWorkload(v string) (string, *netlist.Circuit, []sim.Pattern, error) {
	name, files, ok := strings.Cut(v, "=")
	if !ok {
		wl, err := exp.NamedWorkload(name)
		if err != nil {
			return "", nil, nil, err
		}
		return name, wl.Circuit, wl.Patterns, nil
	}
	circPath, patPath, ok := strings.Cut(files, ":")
	if !ok || name == "" {
		return "", nil, nil, fmt.Errorf("-workload %q: want name=circuit.bench:patterns.txt", v)
	}
	c, _, err := cio.LoadCircuit(circPath, false)
	if err != nil {
		return "", nil, nil, err
	}
	pf, err := os.Open(patPath)
	if err != nil {
		return "", nil, nil, err
	}
	pats, err := tester.ReadPatterns(pf)
	pf.Close()
	if err != nil {
		return "", nil, nil, err
	}
	return name, c, pats, nil
}
