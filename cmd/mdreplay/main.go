// mdreplay re-executes captured incident bundles offline. mdserve's
// incident observatory (-incident-dir) spools one self-contained bundle
// per anomalous request — payload, trace tree, prof snapshots, explain
// events, engine config — and because the diagnosis engine is
// bit-identical at any worker count, mdreplay can re-run the captured
// request through core.DiagnoseCtx at any -j and prove the replayed
// report byte-identical to the one the service answered with. The
// interesting output is therefore not the answer (it cannot change) but
// the diff of *how*: per-phase engine times and cone-cache locality,
// replay vs capture.
//
// Usage:
//
//	mdreplay bundle.json                 replay at the captured -j, diff vs capture
//	mdreplay -j 8 bundle.json            replay at a chosen worker count
//	mdreplay -verify bundle.json         replay at -j 1, 4 and 8; exit 1 unless all
//	                                     reports are byte-identical (and match the
//	                                     captured report when the bundle has one)
//	mdreplay -workload x=c.bench:p.txt bundle.json
//	                                     resolve a non-built-in workload from files
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"multidiag/internal/cio"
	"multidiag/internal/exp"
	"multidiag/internal/incident"
	"multidiag/internal/netlist"
	"multidiag/internal/replay"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

func main() {
	var (
		jobs     = flag.Int("j", 0, "worker count for the replay (0 = the bundle's captured -j)")
		verify   = flag.Bool("verify", false, "replay at every -jset worker count and require byte-identical reports (exit 1 otherwise)")
		jset     = flag.String("jset", "1,4,8", "comma-separated worker counts -verify replays at")
		override = flag.String("workload", "", "resolve the bundle's workload from files: name=circuit.bench:patterns.txt (default: built-in registry)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "mdreplay: at least one bundle file is required")
		os.Exit(2)
	}
	ok := true
	for _, path := range flag.Args() {
		if err := replayOne(path, *jobs, *verify, *jset, *override); err != nil {
			fmt.Fprintln(os.Stderr, "mdreplay:", err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func replayOne(path string, jobs int, verify bool, jset, override string) error {
	b, err := incident.ReadBundle(path)
	if err != nil {
		return err
	}
	c, pats, err := resolveWorkload(b.Workload, override)
	if err != nil {
		return err
	}
	fmt.Printf("bundle: %s\n  trigger=%s status=%d workload=%s j=%d top=%d", path,
		b.Trigger, b.Status, b.Workload, b.Engine.WorkersConfigured, b.Top)
	if b.RequestID != "" {
		fmt.Printf(" request_id=%s", b.RequestID)
	}
	fmt.Printf("\n  captured: report=%v trace=%v prof_snapshots=%d explain_events=%d\n",
		len(b.Report) > 0, b.Trace != nil, len(b.Prof), len(b.Explain))

	ctx := context.Background()
	if verify {
		counts, err := parseJSet(jset)
		if err != nil {
			return err
		}
		v, err := replay.Verify(ctx, c, pats, b, counts)
		if err != nil {
			return err
		}
		for _, r := range v.Runs {
			fmt.Printf("  replay -j %d: %.2fms, report %d bytes\n", r.Workers, float64(r.ElapsedNS)/1e6, len(r.ReportJSON))
		}
		if !v.OK() {
			return fmt.Errorf("%s: verify FAILED: %s", path, v.Mismatch)
		}
		target := "across worker counts"
		if v.Captured != nil {
			target += " and vs the captured report"
		}
		fmt.Printf("  verify: PASS — reports byte-identical %s\n", target)
		diffCapture(b, v.Runs[len(v.Runs)-1])
		return nil
	}

	r, err := replay.Run(ctx, c, pats, b, jobs)
	if err != nil {
		return err
	}
	fmt.Printf("  replay -j %d: %.2fms\n", r.Workers, float64(r.ElapsedNS)/1e6)
	captured, err := replay.NormalizeCaptured(b)
	if err != nil {
		return err
	}
	switch {
	case captured == nil:
		fmt.Printf("  report: %d bytes (no captured report to compare — the %s request never produced one)\n", len(r.ReportJSON), b.Trigger)
	case string(captured) == string(r.ReportJSON):
		fmt.Printf("  report: byte-identical to captured (%d bytes)\n", len(r.ReportJSON))
	default:
		return fmt.Errorf("%s: replayed report DIFFERS from captured (%d vs %d bytes) — determinism contract violated", path, len(r.ReportJSON), len(captured))
	}
	diffCapture(b, r)
	return nil
}

// diffCapture prints the phase-time and cone-cache deltas between the
// bundle's captured trace and one replay — the "what changed about how"
// half of the report.
func diffCapture(b *incident.Bundle, r *replay.RunResult) {
	if b.Trace == nil {
		return
	}
	capPhases := replay.PhaseNS(b.Trace)
	header := false
	for _, name := range replay.PhaseNames {
		cp, rp := capPhases[name], r.PhaseNS[name]
		if cp == 0 && rp == 0 {
			continue
		}
		if !header {
			fmt.Println("  phase times (captured → replay):")
			header = true
		}
		fmt.Printf("    %-8s %9.3fms → %9.3fms\n", name, float64(cp)/1e6, float64(rp)/1e6)
	}
	ch, cm := replay.CacheStats(b.Trace)
	if ch+cm+r.CacheHits+r.CacheMisses > 0 {
		fmt.Printf("  cone cache probes (captured → replay): hits %d → %d, misses %d → %d\n",
			ch, r.CacheHits, cm, r.CacheMisses)
	}
}

func parseJSet(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-jset %q: want comma-separated worker counts ≥ 1", s)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-jset %q: empty", s)
	}
	return out, nil
}

// resolveWorkload finds the bundle's (circuit, patterns): the -workload
// name=circuit.bench:patterns.txt override when its name matches (or is
// the only resolution available), else the built-in registry — the same
// two paths mdserve registers workloads from.
func resolveWorkload(name, override string) (*netlist.Circuit, []sim.Pattern, error) {
	if override != "" {
		oname, files, ok := strings.Cut(override, "=")
		if !ok {
			return nil, nil, fmt.Errorf("-workload %q: want name=circuit.bench:patterns.txt", override)
		}
		if oname == name {
			circPath, patPath, ok := strings.Cut(files, ":")
			if !ok {
				return nil, nil, fmt.Errorf("-workload %q: want name=circuit.bench:patterns.txt", override)
			}
			c, _, err := cio.LoadCircuit(circPath, false)
			if err != nil {
				return nil, nil, err
			}
			pf, err := os.Open(patPath)
			if err != nil {
				return nil, nil, err
			}
			pats, err := tester.ReadPatterns(pf)
			pf.Close()
			if err != nil {
				return nil, nil, err
			}
			return c, pats, nil
		}
	}
	wl, err := exp.NamedWorkload(name)
	if err != nil {
		return nil, nil, fmt.Errorf("workload %q: %w (use -workload %s=circuit.bench:patterns.txt for file-loaded workloads)", name, err, name)
	}
	return wl.Circuit, wl.Patterns, nil
}
