// mdfsim fault-simulates a pattern set against a circuit's collapsed
// stuck-at universe and reports coverage and per-fault detection.
//
// Usage:
//
//	mdfsim -c circuit.bench -p patterns.txt [-v] [-j N]
//
// -j shards the collapsed fault universe across a worker pool (0 =
// GOMAXPROCS, 1 = sequential); the report is identical at every count.
//
// Observability: -trace-out writes JSONL span/run records (simulation
// counters included); -cpuprofile, -memprofile and -debug-addr enable the
// pprof hooks (DESIGN.md §Observability).
package main

import (
	"flag"
	"fmt"
	"os"

	"multidiag/internal/cio"
	"multidiag/internal/fault"
	"multidiag/internal/fsim"
	"multidiag/internal/obs"
	"multidiag/internal/prof"
	"multidiag/internal/tester"
)

func main() {
	var (
		circ    = flag.String("c", "", "circuit .bench file (required)")
		pfile   = flag.String("p", "", "pattern file (required)")
		jobs    = flag.Int("j", 0, "fault-parallel workers (0 = GOMAXPROCS, 1 = sequential)")
		verbose = flag.Bool("v", false, "list per-fault detection")
	)
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	var profFlags prof.Flags
	profFlags.Register(flag.CommandLine)
	flag.Parse()
	if *circ == "" || *pfile == "" {
		fmt.Fprintln(os.Stderr, "mdfsim: -c and -p are required")
		os.Exit(2)
	}
	tr, finishObs, err := obsFlags.Setup("mdfsim")
	if err != nil {
		fatal(err)
	}
	finishProf, err := profFlags.Setup(tr.Registry())
	if err != nil {
		fatal(err)
	}
	c, _ := cio.MustLoad("mdfsim", *circ, false)
	pf, err := os.Open(*pfile)
	if err != nil {
		fatal(err)
	}
	pats, err := tester.ReadPatterns(pf)
	pf.Close()
	if err != nil {
		fatal(err)
	}
	if len(pats) == 0 {
		fatal(fmt.Errorf("no patterns in %s", *pfile))
	}
	fs, err := fsim.NewFaultSim(c, pats)
	if err != nil {
		fatal(err)
	}
	fs.Observe(tr.Registry())
	sp := tr.Span("fsim.parallel")
	universe := fault.Collapse(c)
	syns := fs.SimulateStuckAtBatch(universe, *jobs)
	sp.End()
	detected := 0
	for i, f := range universe {
		syn := syns[i]
		if syn.Detected() {
			detected++
			if *verbose {
				fmt.Printf("DET  %-20s first pattern %d\n", f.Name(c), syn.FailingPatterns()[0])
			}
		} else if *verbose {
			fmt.Printf("UND  %s\n", f.Name(c))
		}
	}
	fmt.Printf("mdfsim: %d/%d collapsed stuck-at faults detected (%.2f%%) by %d patterns\n",
		detected, len(universe), 100*float64(detected)/float64(len(universe)), len(pats))
	if err := finishProf(); err != nil {
		fatal(err)
	}
	if err := finishObs(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdfsim:", err)
	os.Exit(1)
}
