package multidiag_test

import (
	"strings"
	"testing"

	"multidiag/internal/atpg"
	"multidiag/internal/baseline"
	"multidiag/internal/circuits"
	"multidiag/internal/core"
	"multidiag/internal/defect"
	"multidiag/internal/metrics"
	"multidiag/internal/netlist"
	"multidiag/internal/tester"
)

// TestFullFlowThroughSerialization drives the complete flow the CLI tools
// expose, round-tripping every artifact through its text format: circuit →
// .bench → patterns file → datalog file → diagnosis, scored against ground
// truth.
func TestFullFlowThroughSerialization(t *testing.T) {
	orig, err := circuits.Generate(circuits.GenConfig{Seed: 77, NumPIs: 14, NumGates: 400, NumPOs: 10})
	if err != nil {
		t.Fatal(err)
	}

	// Circuit through .bench text.
	var benchText strings.Builder
	if err := netlist.WriteBench(&benchText, orig); err != nil {
		t.Fatal(err)
	}
	c, err := netlist.ParseBench("roundtrip", strings.NewReader(benchText.String()))
	if err != nil {
		t.Fatal(err)
	}

	// Patterns through their text format.
	tests, err := atpg.Generate(c, atpg.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var patText strings.Builder
	if err := tester.WritePatterns(&patText, tests.Patterns); err != nil {
		t.Fatal(err)
	}
	pats, err := tester.ReadPatterns(strings.NewReader(patText.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != len(tests.Patterns) {
		t.Fatalf("pattern round trip lost patterns: %d vs %d", len(pats), len(tests.Patterns))
	}

	// Device + datalog through the datalog text format.
	var (
		ds  []defect.Defect
		log *tester.Datalog
	)
	for seed := int64(1); ; seed++ {
		ds, err = defect.Sample(c, defect.CampaignConfig{Seed: seed, NumDefects: 2})
		if err != nil {
			t.Fatal(err)
		}
		dev, err := defect.Inject(c, ds)
		if err != nil {
			continue
		}
		log, err = tester.ApplyTest(c, dev, pats)
		if err != nil {
			t.Fatal(err)
		}
		if len(log.Fails) > 0 {
			break
		}
	}
	var logText strings.Builder
	if err := tester.WriteDatalog(&logText, log); err != nil {
		t.Fatal(err)
	}
	logBack, err := tester.ReadDatalog(strings.NewReader(logText.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !logBack.Syndrome().Equal(log.Syndrome()) {
		t.Fatal("datalog round trip changed the syndrome")
	}

	// Diagnose from the round-tripped artifacts only.
	res, err := core.Diagnose(c, pats, logBack, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Multiplet) == 0 {
		t.Fatal("no multiplet for failing device")
	}
	var cands []metrics.Candidate
	for _, nets := range res.MultipletNets() {
		cands = append(cands, metrics.Candidate{Nets: nets})
	}
	score := metrics.EvaluateRegion(c, ds, cands, 1)
	if score.Hits == 0 {
		t.Fatalf("nothing localized; injected %v", ds)
	}
}

// TestDiagnosisOnTruncatedDatalog verifies graceful behaviour when the
// tester's fail memory clips the datalog: the diagnosis still runs and
// still localizes from the partial evidence.
func TestDiagnosisOnTruncatedDatalog(t *testing.T) {
	c, err := circuits.RippleAdder(12)
	if err != nil {
		t.Fatal(err)
	}
	tests, err := atpg.Generate(c, atpg.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ds := []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("c5"), Value1: true}}
	dev, err := defect.Inject(c, ds)
	if err != nil {
		t.Fatal(err)
	}
	full, err := tester.ApplyTest(c, dev, tests.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumFailBits() < 4 {
		t.Skip("defect too quiet for truncation test")
	}
	trunc := full.Truncate(full.NumFailBits() / 2)
	if !trunc.Truncated {
		t.Fatal("expected truncation")
	}
	res, err := core.Diagnose(c, tests.Patterns, trunc, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var cands []metrics.Candidate
	for _, nets := range res.MultipletNets() {
		cands = append(cands, metrics.Candidate{Nets: nets})
	}
	if metrics.EvaluateRegion(c, ds, cands, 1).Hits == 0 {
		t.Error("truncated datalog: defect not localized")
	}
}

// TestScanCircuitFlow exercises the full-scan conversion front end: a
// sequential .bench design is converted, tested and diagnosed.
func TestScanCircuitFlow(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
q1 = DFF(d1)
q2 = DFF(d2)
d1 = XOR(a, q2)
d2 = AND(b, q1)
z = OR(q1, d1)
`
	c, ffs, err := netlist.ParseBenchScan("seq2", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if ffs != 2 {
		t.Fatalf("ffs = %d", ffs)
	}
	tests, err := atpg.Generate(c, atpg.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tests.Coverage() < 0.99 {
		t.Fatalf("scan circuit coverage %.2f", tests.Coverage())
	}
	target := c.NetByName("d1")
	ds := []defect.Defect{{Kind: defect.StuckNet, Net: target, Value1: false}}
	dev, err := defect.Inject(c, ds)
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, dev, tests.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) == 0 {
		t.Skip("not activated")
	}
	res, err := core.Diagnose(c, tests.Patterns, log, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var cands []metrics.Candidate
	for _, nets := range res.MultipletNets() {
		cands = append(cands, metrics.Candidate{Nets: nets})
	}
	if metrics.EvaluateRegion(c, ds, cands, 1).Hits == 0 {
		t.Error("scan-converted circuit: defect not localized")
	}
}

// TestAllEnginesAgreeOnSingleStuck is the cross-engine consistency check:
// for an easy single stuck defect every engine, from the cheapest to the
// most expensive, localizes the same site.
func TestAllEnginesAgreeOnSingleStuck(t *testing.T) {
	c, err := circuits.ALUSlice(4)
	if err != nil {
		t.Fatal(err)
	}
	tests, err := atpg.Generate(c, atpg.Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	target := c.NetByName("sum2")
	ds := []defect.Defect{{Kind: defect.StuckNet, Net: target, Value1: true}}
	dev, err := defect.Inject(c, ds)
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, dev, tests.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) == 0 {
		t.Skip("not activated")
	}
	check := func(name string, nets [][]netlist.NetID) {
		var cands []metrics.Candidate
		for _, ns := range nets {
			cands = append(cands, metrics.Candidate{Nets: ns})
		}
		if metrics.EvaluateRegion(c, ds, cands, 1).Hits == 0 {
			t.Errorf("%s missed the single stuck defect", name)
		}
	}
	res, err := core.Diagnose(c, tests.Patterns, log, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	check("core", res.MultipletNets())
	slat, err := baseline.SLAT(c, tests.Patterns, log, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("slat", slat.Nets())
	inter, err := baseline.Intersection(c, tests.Patterns, log)
	if err != nil {
		t.Fatal(err)
	}
	check("intersection", inter.Nets())
	dict, err := baseline.BuildDictionary(c, tests.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := dict.Diagnose(log, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("dictionary", dres.Nets())
}

// TestSequentialUnrolledDiagnosis exercises non-scan sequential diagnosis
// via time-frame expansion: a defect in the combinational core of a 2-bit
// counter is present in *every* frame of the unrolled model; diagnosis on
// the unrolled circuit must localize it, and the origin map must fold the
// per-frame candidates back to one core net.
func TestSequentialUnrolledDiagnosis(t *testing.T) {
	const counterBench = `
INPUT(en)
OUTPUT(out)
q0 = DFF(d0)
q1 = DFF(d1)
d0 = XOR(q0, en)
t  = AND(q0, en)
d1 = XOR(q1, t)
out = AND(q1, q0)
`
	seq, err := netlist.ParseBenchSeq("cnt", strings.NewReader(counterBench))
	if err != nil {
		t.Fatal(err)
	}
	const frames = 5
	u, err := seq.Unroll(frames)
	if err != nil {
		t.Fatal(err)
	}
	c := u.Circuit

	// The physical defect: core net "t" stuck-at-1, present in all frames.
	coreT := seq.Comb.NetByName("t")
	var ds []defect.Defect
	for id := range c.Gates {
		if on, ok := u.CoreNetOf(netlist.NetID(id)); ok && on.Orig == coreT {
			ds = append(ds, defect.Defect{Kind: defect.StuckNet, Net: netlist.NetID(id), Value1: true})
		}
	}
	if len(ds) != frames {
		t.Fatalf("expected %d frame copies of t, got %d", frames, len(ds))
	}
	dev, err := defect.Inject(c, ds)
	if err != nil {
		t.Fatal(err)
	}

	// Test sequences: ATPG on the unrolled model (initial state controlled
	// by the sequence, which matches a resettable design).
	tests, err := atpg.Generate(c, atpg.Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, dev, tests.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) == 0 {
		t.Skip("defect not activated by sequences")
	}
	res, err := core.Diagnose(c, tests.Patterns, log, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Fold candidates back to core nets.
	coreHits := map[netlist.NetID]bool{}
	for _, cd := range res.Multiplet {
		for _, n := range cd.Nets() {
			if on, ok := u.CoreNetOf(n); ok {
				coreHits[on.Orig] = true
			}
		}
	}
	// Accept the defective net or a directly adjacent core net (frame-level
	// equivalences fold to neighbours exactly like combinational ones).
	accept := map[netlist.NetID]bool{coreT: true}
	for _, f := range seq.Comb.Gates[coreT].Fanin {
		accept[f] = true
	}
	for _, rd := range seq.Comb.Gates[coreT].Fanout {
		accept[rd] = true
	}
	ok := false
	for n := range coreHits {
		if accept[n] {
			ok = true
		}
	}
	if !ok {
		names := []string{}
		for n := range coreHits {
			names = append(names, seq.Comb.NameOf(n))
		}
		t.Fatalf("core net t not localized; folded candidates: %v", names)
	}
}
