// Package multidiag_test hosts the benchmark harness: one testing.B
// benchmark per evaluation table and figure (DESIGN.md §4). Each benchmark
// regenerates its table/figure once per iteration in quick mode, so
//
//	go test -bench=. -benchmem
//
// both times the experiment pipeline and prints the regenerated artifact
// rows (on the first iteration) for EXPERIMENTS.md.
package multidiag_test

import (
	"io"
	"os"
	"sync"
	"testing"

	"multidiag/internal/exp"
)

// benchOpts returns the benchmark-scale options: quick workloads keep a
// full -bench=. run in CI time while preserving every experiment's shape.
func benchOpts() exp.Options { return exp.Options{Quick: true, Seeds: 4} }

var printOnce sync.Map

// run executes an experiment once per b.N iteration; the first iteration of
// each benchmark also prints the regenerated table to stdout.
func run(b *testing.B, name string, fn func(io.Writer, exp.Options) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var w io.Writer = io.Discard
		if _, printed := printOnce.LoadOrStore(name, true); !printed && i == 0 {
			w = os.Stdout
		}
		if err := fn(w, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1Characteristics(b *testing.B) { run(b, "T1", exp.T1Characteristics) }
func BenchmarkT2SingleDefect(b *testing.B)    { run(b, "T2", exp.T2SingleDefect) }
func BenchmarkT3MultiDefect(b *testing.B)     { run(b, "T3", exp.T3MultiDefect) }
func BenchmarkT4PatternCharacter(b *testing.B) {
	run(b, "T4", exp.T4PatternCharacter)
}
func BenchmarkT5Ablation(b *testing.B)  { run(b, "T5", exp.T5Ablation) }
func BenchmarkT6IntraCell(b *testing.B) { run(b, "T6", exp.T6IntraCell) }
func BenchmarkT7DelayDefects(b *testing.B) {
	run(b, "T7", exp.T7DelayDefects)
}
func BenchmarkT8ResolutionImprovement(b *testing.B) {
	run(b, "T8", exp.T8ResolutionImprovement)
}
func BenchmarkT9Compaction(b *testing.B) { run(b, "T9", exp.T9Compaction) }

func BenchmarkF1AccuracyVsDefects(b *testing.B) {
	run(b, "F1", exp.F1AccuracyVsDefects)
}
func BenchmarkF2ResolutionVsDefects(b *testing.B) {
	run(b, "F2", exp.F2ResolutionVsDefects)
}
func BenchmarkF3Runtime(b *testing.B)     { run(b, "F3", exp.F3Runtime) }
func BenchmarkF4DefectTypes(b *testing.B) { run(b, "F4", exp.F4DefectTypes) }
