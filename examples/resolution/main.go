// Resolution: the closed diagnostic loop. A weak production test set
// leaves several candidate sites indistinguishable; the DTPG loop generates
// patterns that split them, "re-tests the device" (here: the injected
// model), and re-diagnoses — shrinking the suspect list the failure analyst
// must physically inspect.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"multidiag/internal/circuits"
	"multidiag/internal/core"
	"multidiag/internal/defect"
	"multidiag/internal/dtpg"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

func main() {
	c, err := circuits.Generate(circuits.GenConfig{
		Name: "demo500", Seed: 500, NumPIs: 20, NumGates: 500, NumPOs: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	// A deliberately weak test set: five random patterns.
	r := rand.New(rand.NewSource(8))
	pats := make([]sim.Pattern, 5)
	for i := range pats {
		p := make(sim.Pattern, len(c.PIs))
		for j := range p {
			p[j] = logic.FromBool(r.Intn(2) == 1)
		}
		pats[i] = p
	}

	// One stuck defect.
	ds, err := defect.Sample(c, defect.CampaignConfig{Seed: 5, NumDefects: 1, MixStuck: 1})
	if err != nil {
		log.Fatal(err)
	}
	device, err := defect.Inject(c, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected: %s\n", ds[0].Describe(c))
	datalog, err := tester.ApplyTest(c, device, pats)
	if err != nil {
		log.Fatal(err)
	}
	if len(datalog.Fails) == 0 {
		log.Fatal("weak set did not activate the defect; change the seed")
	}

	// Initial diagnosis from the weak evidence.
	res, err := core.Diagnose(c, pats, datalog, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninitial diagnosis (%d patterns):\n", len(pats))
	printMultiplet(c, res)

	// Closed loop: diagnose → generate distinguishing patterns → re-test.
	apply := func(extra []sim.Pattern) (*tester.Datalog, error) {
		return tester.ApplyTest(c, device, extra)
	}
	lr, err := dtpg.ImproveResolution(c, pats, datalog, apply, core.Config{}, dtpg.Config{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter %d DTPG round(s), +%d patterns:\n", lr.Rounds, lr.PatternsAdded)
	printMultiplet(c, lr.Result)
	fmt.Printf("\nsuspect sites: %d → %d\n", lr.ResolutionBefore, lr.ResolutionAfter)
}

func printMultiplet(c *netlist.Circuit, res *core.Result) {
	for i, cd := range res.Multiplet {
		fmt.Printf("  #%d %s", i+1, cd.Fault.Name(c))
		for _, e := range cd.Equivalent {
			fmt.Printf(" ≡ %s", e.Name(c))
		}
		fmt.Println()
	}
}
