// Multidefect: the headline scenario of the method — a 2000-gate circuit
// with four simultaneous defects of mixed mechanisms, diagnosed by the
// no-assumption engine and by the SLAT baseline side by side, scored
// against the injected ground truth.
package main

import (
	"fmt"
	"log"

	"multidiag/internal/atpg"
	"multidiag/internal/baseline"
	"multidiag/internal/circuits"
	"multidiag/internal/core"
	"multidiag/internal/defect"
	"multidiag/internal/metrics"
	"multidiag/internal/tester"
)

func main() {
	// A synthetic 2000-gate design, reproducible from its seed.
	c, err := circuits.Generate(circuits.GenConfig{
		Name: "demo2k", Seed: 2026, NumPIs: 32, NumGates: 2000, NumPOs: 24,
	})
	if err != nil {
		log.Fatal(err)
	}
	tests, err := atpg.Generate(c, atpg.Config{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d gates, %d patterns, %.1f%% coverage\n",
		c.Name, c.NumLogicGates(), len(tests.Patterns), 100*tests.Coverage())

	// Four simultaneous defects, mixed mechanisms.
	ds, err := defect.Sample(c, defect.CampaignConfig{Seed: 99, NumDefects: 4})
	if err != nil {
		log.Fatal(err)
	}
	device, err := defect.Inject(c, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("injected ground truth:")
	for _, d := range ds {
		fmt.Printf("  %s\n", d.Describe(c))
	}
	datalog, err := tester.ApplyTest(c, device, tests.Patterns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("datalog: %d failing patterns, %d fail bits\n\n",
		len(datalog.FailingPatterns()), datalog.NumFailBits())

	// Ours.
	res, err := core.Diagnose(c, tests.Patterns, datalog, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	var ourCands []metrics.Candidate
	fmt.Println("no-assumption diagnosis multiplet:")
	for i, cd := range res.Multiplet {
		fmt.Printf("  #%d %s (covers %d bits, %d mispred, %d equivalents)\n",
			i+1, cd.Name(c), cd.TFSF, cd.TPSF, len(cd.Equivalent))
		ourCands = append(ourCands, metrics.Candidate{Nets: cd.Nets()})
	}
	ours := metrics.EvaluateRegion(c, ds, ourCands, 1)
	fmt.Printf("  → localized %d/%d injected defects (elapsed %s)\n\n",
		ours.Hits, ours.InjectedDefects, res.Elapsed)

	// SLAT baseline on the same datalog.
	slatRes, err := baseline.SLAT(c, tests.Patterns, datalog, 0)
	if err != nil {
		log.Fatal(err)
	}
	var slatCands []metrics.Candidate
	fmt.Printf("SLAT baseline (%d SLAT / %d non-SLAT failing patterns):\n",
		slatRes.SLATPatterns, slatRes.NonSLATPatterns)
	for i, nets := range slatRes.Nets() {
		fmt.Printf("  #%d %s (explains %d SLAT patterns)\n",
			i+1, slatRes.Multiplet[i].Fault.Name(c), slatRes.Multiplet[i].Explained)
		slatCands = append(slatCands, metrics.Candidate{Nets: nets})
	}
	slat := metrics.EvaluateRegion(c, ds, slatCands, 1)
	fmt.Printf("  → localized %d/%d injected defects\n", slat.Hits, slat.InjectedDefects)
}
