// Quickstart: the complete diagnosis flow on the c17 benchmark in ~40
// lines — generate tests, break the device, read the datalog, diagnose.
package main

import (
	"fmt"
	"log"

	"multidiag/internal/atpg"
	"multidiag/internal/circuits"
	"multidiag/internal/core"
	"multidiag/internal/defect"
	"multidiag/internal/tester"
)

func main() {
	// 1. The design and its test set.
	c := circuits.C17()
	tests, err := atpg.Generate(c, atpg.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d patterns, %.0f%% stuck-at coverage\n",
		c.Name, len(tests.Patterns), 100*tests.Coverage())

	// 2. A defective device: net G16 shorted to ground.
	ds := []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}}
	device, err := defect.Inject(c, ds)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Production test produces the datalog (failing patterns + outputs).
	datalog, err := tester.ApplyTest(c, device, tests.Patterns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tester: %d failing patterns\n", len(datalog.FailingPatterns()))

	// 4. Diagnosis sees only the design, the patterns and the datalog.
	result, err := core.Diagnose(c, tests.Patterns, datalog, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for i, cand := range result.Multiplet {
		fmt.Printf("suspect #%d: %s (covers %d/%d failing bits)\n",
			i+1, cand.Name(c), cand.TFSF, len(result.Evidence))
	}
	fmt.Printf("consistent: %v, elapsed: %s\n", result.Consistent, result.Elapsed)
}
