// Sequential: non-scan diagnosis via time-frame expansion. A 2-bit
// synchronous counter (no scan chain!) has a stuck net in its
// next-state logic; multi-cycle test sequences are applied, the unrolled
// model is diagnosed, and candidates are folded back to core nets.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"multidiag/internal/core"
	"multidiag/internal/defect"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/seqdiag"
	"multidiag/internal/sim"
)

const counterBench = `
INPUT(en)
OUTPUT(out)
q0 = DFF(d0)
q1 = DFF(d1)
d0 = XOR(q0, en)
t  = AND(q0, en)
d1 = XOR(q1, t)
out = AND(q1, q0)
`

func main() {
	seq, err := netlist.ParseBenchSeq("counter", strings.NewReader(counterBench))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(seq)

	// Twelve 5-cycle test sequences from a known reset state.
	r := rand.New(rand.NewSource(2))
	var sequences []seqdiag.Sequence
	for i := 0; i < 12; i++ {
		s := seqdiag.Sequence{InitState: make([]logic.Value, seq.NumFFs())}
		for f := 0; f < 5; f++ {
			p := make(sim.Pattern, len(seq.RealPIs))
			for j := range p {
				p[j] = logic.FromBool(r.Intn(2) == 1)
			}
			s.Cycles = append(s.Cycles, p)
		}
		sequences = append(sequences, s)
	}

	// The physical defect: the carry AND gate output stuck at 1.
	target := seq.Comb.NetByName("t")
	deviceCore, err := defect.Inject(seq.Comb, []defect.Defect{
		{Kind: defect.StuckNet, Net: target, Value1: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected: %s stuck-at-1 (inside the next-state logic)\n", seq.Comb.NameOf(target))

	datalog, err := seqdiag.ApplySequences(seq, deviceCore, sequences)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tester: %d of %d sequences failed\n\n", len(datalog.FailingPatterns()), len(sequences))

	res, unrolled, err := seqdiag.Diagnose(seq, sequences, datalog, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unrolled model: %d frames, %d gates\n",
		unrolled.Frames, unrolled.Circuit.NumLogicGates())
	fmt.Println("folded candidates (core nets):")
	for i, cd := range res.Candidates {
		marker := ""
		if cd.Net == target {
			marker = "   ← injected defect"
		}
		v := "0"
		if cd.StuckOne {
			v = "1"
		}
		fmt.Printf("  #%d %s sa%s, implicated in frames %v%s\n",
			i+1, seq.Comb.NameOf(cd.Net), v, cd.Frames, marker)
		for _, e := range cd.Equivalent {
			fmt.Printf("      ≡ %s\n", seq.Comb.NameOf(e))
		}
	}
	fmt.Printf("elapsed: %s\n", res.Elapsed)
}
