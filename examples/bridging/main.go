// Bridging: diagnosis of a dominant short between two unrelated signal
// nets in a 16-bit adder — the scenario where fault-model-free extraction
// matters, because the victim behaves as a *conditional* stuck-at whose
// polarity follows the aggressor. The engine first localizes the victim
// site, then the bridge-model refinement names aggressor candidates.
package main

import (
	"fmt"
	"log"

	"multidiag/internal/atpg"
	"multidiag/internal/circuits"
	"multidiag/internal/core"
	"multidiag/internal/defect"
	"multidiag/internal/fault"
	"multidiag/internal/tester"
)

func main() {
	c, err := circuits.RippleAdder(16)
	if err != nil {
		log.Fatal(err)
	}
	tests, err := atpg.Generate(c, atpg.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d gates, %d patterns\n", c.Name, c.NumLogicGates(), len(tests.Patterns))

	// Short: the bit-7 carry-propagate XOR output is dominated by the
	// bit-12 partial carry — two electrically unrelated nets that a layout
	// router could well have placed side by side.
	victim := c.NetByName("axb7")
	aggressor := c.NetByName("t1_12")
	ds := []defect.Defect{{
		Kind: defect.BridgeDefect, Net: victim, Aggressor: aggressor,
		BridgeKind: fault.DominantBridge,
	}}
	fmt.Printf("injected: %s\n", ds[0].Describe(c))

	device, err := defect.Inject(c, ds)
	if err != nil {
		log.Fatal(err)
	}
	datalog, err := tester.ApplyTest(c, device, tests.Patterns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("datalog: %d failing patterns\n\n", len(datalog.FailingPatterns()))

	res, err := core.Diagnose(c, tests.Patterns, datalog, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for i, cd := range res.Multiplet {
		fmt.Printf("suspect #%d: %s (covers %d bits, %d mispredictions)\n",
			i+1, cd.Name(c), cd.TFSF, cd.TPSF)
		for _, m := range cd.Models {
			switch m.Kind {
			case core.BridgeModel:
				marker := ""
				if m.Aggressor == aggressor {
					marker = "   ← injected aggressor"
				}
				fmt.Printf("  model: dominant bridge from %s (%d mispred)%s\n",
					c.NameOf(m.Aggressor), m.Mispredictions, marker)
			default:
				fmt.Printf("  model: stuck-at/open (%d mispred)\n", m.Mispredictions)
			}
		}
	}
	hitV := false
	for _, cd := range res.Multiplet {
		for _, n := range cd.Nets() {
			if n == victim || n == aggressor {
				hitV = true
			}
		}
	}
	fmt.Printf("\nbridge endpoints localized: %v (elapsed %s)\n", hitV, res.Elapsed)
}
