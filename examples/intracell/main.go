// Intracell: the transistor-level extension — after gate-level diagnosis
// pins a suspected cell, the switch-level effect-cause flow locates the
// defect *inside* the cell. Here an AOI22 cell has an internal series node
// shorted to ground; the flow derives local failing/passing patterns and
// reports stuck, bridge and delay suspect lists with the transistor
// terminals PFA should image.
package main

import (
	"fmt"
	"log"

	"multidiag/internal/intracell"
	"multidiag/internal/logic"
)

func main() {
	cell := intracell.AOI22()
	fmt.Printf("cell %s: %d inputs, %d transistors, output %s\n",
		cell.Name, len(cell.Inputs), len(cell.Transistors), cell.Nodes[cell.Output])

	// The defect: internal pull-down node n1 (between the A and B series
	// devices) shorted to GND.
	n1 := cell.NodeByName("n1")
	defectCfg := &intracell.SimConfig{
		ForcedNodes: map[intracell.NodeID]logic.Value{n1: logic.Zero},
	}
	fmt.Printf("injected: node %s shorted to GND\n\n", cell.Nodes[n1])

	// Local failing/passing patterns — in the full flow these come from
	// circuit-level simulation of the suspected gate's input values; here
	// the faulty cell itself supplies them.
	lfp, lpp, err := intracell.LocalPatterns(cell, defectCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local failing patterns: %d, local passing patterns: %d\n", len(lfp), len(lpp))
	for _, p := range lfp {
		fmt.Printf("  failing: A=%v B=%v C=%v D=%v\n", p[0], p[1], p[2], p[3])
	}

	d, err := intracell.Diagnose(cell, lfp, lpp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstuck suspects:")
	for _, s := range d.Stuck {
		marker := ""
		if s.Node == n1 {
			marker = "   ← injected defect"
		}
		fmt.Printf("  %s stuck-at-%v%s\n", cell.Nodes[s.Node], s.Value, marker)
	}
	fmt.Println("bridge suspects (victim ← aggressor):")
	for _, b := range d.Bridges {
		fmt.Printf("  %s ← %s\n", cell.Nodes[b.Victim], cell.Nodes[b.Aggressor])
	}
	fmt.Println("delay suspects:")
	for _, n := range d.Delays {
		fmt.Printf("  %s\n", cell.Nodes[n])
	}
	fmt.Println("\ntransistor terminals to image in PFA:")
	for _, n := range d.SuspectNodes() {
		for _, tr := range d.TransistorSuspects[n] {
			t := cell.Transistors[tr.Transistor]
			fmt.Printf("  %s.%s (node %s)\n", t.Name, tr.Terminal, cell.Nodes[n])
		}
	}
	fmt.Printf("\nresolution: %d suspects, dynamic-only: %v\n", d.Resolution(), d.DynamicOnly)
}
