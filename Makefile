GO ?= go

.PHONY: all build test race vet lint bench benchdiff quality quality-baseline prof prof-gate prof-baseline serve-smoke vol-smoke clean

all: build vet test

build:
	$(GO) build ./...
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) test ./...

# race covers the packages with real concurrency: the obs registry, the
# campaign worker pool, the fault-parallel engine, the sharded cone
# cache (the fsim stress test is the cache's -race proof), the span-tree
# tracer (workers and capture snapshots share one tree), the diagnosis
# service (admission, batcher, concurrent traced clients), the
# profiling collector (phase windows, snapshot rings, /debug/prof polls)
# and the volume pipeline (sharded fingerprint cache, singleflight
# dedupe, parallel ingest workers).
race:
	$(GO) test -race ./internal/obs ./internal/exp ./internal/fsim ./internal/core ./internal/trace ./internal/serve ./internal/prof ./internal/volume

vet:
	$(GO) vet ./...

# lint mirrors the CI lint job: gofmt cleanliness always, staticcheck when
# the binary is on PATH (CI installs it; local runs may not have it).
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "lint: staticcheck not installed, skipped"; fi

# bench proves the observability budgets (BenchmarkDiagnose vs the traced
# and explained variants plus the obs micro-benchmarks) and the serving
# overhead (BenchmarkServeDiagnose vs the same diagnosis via the core
# API), writes the diagnosis results as a machine-readable baseline to
# BENCH_diag.json (the committed copy is what benchdiff compares
# against), and writes a schema-valid quick-suite trace to BENCH_obs.json.
# The -bench pattern is 'Diagnose|VolumeIngest', not 'BenchmarkDiagnose':
# the latter would silently skip BenchmarkServeDiagnose and the volume
# ingest pair.
bench: build
	$(GO) test -run xxx -bench 'Diagnose|VolumeIngest' -benchmem ./internal/core ./internal/serve ./internal/volume | tee /tmp/bench_core.txt
	$(GO) test -run xxx -bench 'BenchmarkSpan|BenchmarkCounter|BenchmarkHistogram' -benchmem ./internal/obs
	bin/benchdiff parse -o BENCH_diag.json < /tmp/bench_core.txt
	bin/mdexp -quick -seeds 1 -only T1 -trace-out BENCH_obs.json > /dev/null

# benchdiff re-runs the diagnosis benchmarks (core + serving path +
# volume ingest) and compares against the committed BENCH_diag.json
# baseline, warning on >20% ns/op regressions; the speedup gate requires
# dedupe to beat the no-cache baseline by ≥5× on the 90%-repeat stream.
benchdiff: build
	$(GO) test -run xxx -bench 'Diagnose|VolumeIngest' -benchmem ./internal/core ./internal/serve ./internal/volume | bin/benchdiff parse -o /tmp/bench_current.json
	bin/benchdiff compare BENCH_diag.json /tmp/bench_current.json
	bin/benchdiff speedup /tmp/bench_current.json -base BenchmarkVolumeIngest -target BenchmarkVolumeIngestDeduped -min 5

# QUALITY_CMD is the exact campaign both quality targets run, so the
# committed baseline and the comparison candidate are always like-for-like
# (deterministic seeds; -j 2 exercises the shared cone cache).
QUALITY_CMD = bin/mdexp -quick -seeds 3 -only T3 -j 2 -quality-out

# quality re-runs the quick T3 campaign and gates its quality records
# against the committed QUALITY_baseline.json: accuracy/success drops are
# errors, resolution/latency drift warns (see cmd/mdtrend). -ms-pct is
# loosened here: 3-seed campaigns make per-diagnosis timing very noisy.
quality: build
	$(QUALITY_CMD) /tmp/quality_current.json > /dev/null
	bin/mdtrend compare QUALITY_baseline.json /tmp/quality_current.json -ms-pct 200

# quality-baseline regenerates the committed baseline after an intentional
# quality change (commit the diff alongside the change that caused it).
quality-baseline: build
	$(QUALITY_CMD) QUALITY_baseline.json > /dev/null

# PROF_CMD is the exact profiled campaign both prof targets run, so the
# committed PROF_baseline.json and the gate candidate are like-for-like
# (deterministic single-seed T3 — the diagnosis campaign, so every phase
# window fires; -j 1 keeps the phases sequential so the per-phase deltas
# tile the run).
PROF_CMD = bin/mdexp -quick -seeds 1 -only T3 -j 1 -prof -prof-out

# prof runs the profiled campaign and prints the per-phase attribution
# report (wall, allocations, contention) from the snapshot stream.
prof: build
	$(PROF_CMD) /tmp/prof_current.jsonl > /dev/null
	bin/mdprof report /tmp/prof_current.jsonl

# prof-gate re-runs the profiled campaign and gates its per-phase
# allocation profile against the committed PROF_baseline.json: >25%
# per-call growth warns, >50% fails (see cmd/mdprof).
prof-gate: build
	$(PROF_CMD) /tmp/prof_current.jsonl > /dev/null
	bin/mdprof gate PROF_baseline.json /tmp/prof_current.jsonl

# prof-baseline regenerates the committed allocation baseline after an
# intentional profile change (commit the diff alongside its cause).
prof-baseline: build
	$(PROF_CMD) /tmp/prof_baseline.jsonl > /dev/null
	bin/mdprof baseline /tmp/prof_baseline.jsonl -o PROF_baseline.json

# serve-smoke boots mdserve, fires a request burst, checks /metrics, and
# requires a clean SIGTERM drain — the end-to-end proof behind the
# handler-level tests in internal/serve.
serve-smoke: build
	sh scripts/serve_smoke.sh

# vol-smoke runs the volume-diagnosis pipeline end to end: a pinned
# synthetic stream (mdgen -datalogs) through mdvol at several worker
# counts and cache states (byte-identical reports and aggregates
# required), then the same stream through a live mdserve /v1/ingest with
# the aggregates diffed via mdtrend compare-volume.
vol-smoke: build
	sh scripts/vol_smoke.sh

# determinism-check diffs mddiag reports across worker counts and
# cone-cache states (see scripts/determinism_check.sh): the parallel
# engine's bit-identical-output contract, held end to end.
determinism-check: build
	sh scripts/determinism_check.sh

clean:
	rm -rf bin BENCH_obs.json
