GO ?= go

.PHONY: all build test race vet bench clean

all: build vet test

build:
	$(GO) build ./...
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs ./internal/exp

vet:
	$(GO) vet ./...

# bench proves the <2% disabled-tracing budget (BenchmarkDiagnose vs
# BenchmarkDiagnoseTraced plus the obs micro-benchmarks) and writes a
# schema-valid quick-suite trace to BENCH_obs.json.
bench: build
	$(GO) test -run xxx -bench 'BenchmarkDiagnose|BenchmarkSpan|BenchmarkCounter|BenchmarkHistogram' -benchmem ./internal/core ./internal/obs
	bin/mdexp -quick -seeds 1 -only T1 -trace-out BENCH_obs.json > /dev/null

clean:
	rm -rf bin BENCH_obs.json
