GO ?= go

.PHONY: all build test race vet bench benchdiff clean

all: build vet test

build:
	$(GO) build ./...
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs ./internal/exp

vet:
	$(GO) vet ./...

# bench proves the observability budgets (BenchmarkDiagnose vs the traced
# and explained variants plus the obs micro-benchmarks), writes the core
# diagnosis results as a machine-readable baseline to BENCH_diag.json (the
# committed copy is what benchdiff compares against), and writes a
# schema-valid quick-suite trace to BENCH_obs.json.
bench: build
	$(GO) test -run xxx -bench 'BenchmarkDiagnose' -benchmem ./internal/core | tee /tmp/bench_core.txt
	$(GO) test -run xxx -bench 'BenchmarkSpan|BenchmarkCounter|BenchmarkHistogram' -benchmem ./internal/obs
	bin/benchdiff parse -o BENCH_diag.json < /tmp/bench_core.txt
	bin/mdexp -quick -seeds 1 -only T1 -trace-out BENCH_obs.json > /dev/null

# benchdiff re-runs the core diagnosis benchmarks and compares against the
# committed BENCH_diag.json baseline, warning on >20% ns/op regressions.
benchdiff: build
	$(GO) test -run xxx -bench 'BenchmarkDiagnose' -benchmem ./internal/core | bin/benchdiff parse | bin/benchdiff compare BENCH_diag.json -

clean:
	rm -rf bin BENCH_obs.json
